"""The checkpoint coordinator — MANA's out-of-band control plane.

Real MANA inherits a coordinator process from DMTCP: a socket-connected
daemon that broadcasts checkpoint requests and sequences the global
phases.  Here the coordinator is a shared object with reusable phase
gates; it carries *no application or MPI data* — everything
payload-bearing flows through the lower-half MPI library, as in the
real system.

Two checkpoint kinds (DESIGN.md §1, restart modes):

* ``IN_SESSION`` — ranks park at *any* wrapper safe point (any MPI call
  boundary, or inside a compute region, standing in for MANA's
  checkpoint signal).  Full fidelity for quiesce/drain/rebind; the
  image is written but threads stay alive.
* ``LOOP`` — ranks agree (via the coordinator's iteration election) on a
  common future loop iteration and park exactly there; the image is
  cold-restartable: a brand-new session can resume it.

The coordinator also hosts the *trivial barrier* used by collective
wrappers (two-phase collectives): ranks register arrival at
(communicator key, sequence) and poll until the member set is complete,
remaining responsive to checkpoint intent while they wait.  Arrival is
idempotent, so a rank that detours into a checkpoint and comes back
re-enters safely.

Hardening (PROTOCOLS.md §9): the four phase rendezvous are custom
condition-variable gates rather than ``threading.Barrier`` so that (a)
waits use bounded exponential-backoff slices under a configurable
``phase_timeout``, (b) a timeout produces a *descriptive* error naming
the stuck phase and the outstanding ranks instead of a broken-barrier
trace, and (c) a round can be **aborted and retried**: when a stall is
detected (or injected), :meth:`abort_round` releases every parked rank
with :class:`CheckpointRoundAborted`, bumps the round attempt, and —
while ``round_retries`` remain — leaves the same ticket armed so the
ranks immediately re-run the round.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.simtime.cost import (
    CheckpointCostModel,
    FilesystemProfile,
    checkpoint_time,
)
from repro.util.errors import CheckpointError, CheckpointRoundAborted


class CheckpointKind:
    IN_SESSION = "in-session"
    LOOP = "loop"


class CheckpointMode:
    """What happens to the running job after the image is written."""

    CONTINUE = "continue"    # keep the current lower half (DMTCP resume)
    RELAUNCH = "relaunch"    # discard the lower half, replay into a new one
    EXIT = "exit"            # preemption: unwind the job after saving


@dataclass
class CheckpointTicket:
    """Handle returned to whoever requested a checkpoint."""

    generation: int
    kind: str
    mode: str
    _done: threading.Event = field(default_factory=threading.Event)
    result: Dict = field(default_factory=dict)
    error: Optional[BaseException] = None
    # Backref for diagnostics only (phase snapshot on timeout).
    _coord: Optional[object] = field(default=None, repr=False, compare=False)

    def wait(self, timeout: float = 300.0) -> Dict:
        if not self._done.wait(timeout):
            detail = ""
            if self._coord is not None:
                detail = "; " + self._coord.phase_snapshot()
            raise CheckpointError(
                f"checkpoint generation {self.generation} did not complete "
                f"in time (waited {timeout:.0f}s){detail}"
            )
        if self.error is not None:
            raise self.error
        return self.result


class _PhaseGate:
    """A reusable all-ranks rendezvous with diagnostics.

    Unlike ``threading.Barrier``, a gate (a) tracks *which* ranks have
    arrived, so a timeout names the stragglers; (b) waits in
    exponential-backoff slices (50 ms doubling to 2 s) under the overall
    timeout, so released waiters wake promptly without spinning; and
    (c) can be :meth:`release`-d — waiters return without the gate
    action running, and the caller's attempt check converts that into a
    :class:`CheckpointRoundAborted` retry.  :meth:`break_` is terminal:
    every current and future waiter raises the abort exception.

    Lock ordering: the gate CV may be held while the last arriver's
    ``action`` takes the coordinator lock (gate → coordinator).  Abort
    paths therefore touch gates only *after* dropping the coordinator
    lock.
    """

    def __init__(self, name: str, parties: int,
                 action: Optional[Callable[[], None]] = None):
        self.name = name
        self.parties = parties
        self.action = action
        self._cv = threading.Condition()
        self._arrived: Set[int] = set()
        self._cycle = 0
        self._broken: Optional[BaseException] = None

    def arrived_ranks(self) -> List[int]:
        with self._cv:
            return sorted(self._arrived)

    def wait(self, rank: int, timeout: float = 300.0) -> None:
        with self._cv:
            if self._broken is not None:
                raise self._broken
            cycle = self._cycle
            self._arrived.add(rank)
            if len(self._arrived) >= self.parties:
                # Last arriver: run the gate action, open the gate.
                if self.action is not None:
                    self.action()
                self._arrived.clear()
                self._cycle += 1
                self._cv.notify_all()
                return
            deadline = time.monotonic() + timeout
            backoff = 0.05
            while self._cycle == cycle:
                if self._broken is not None:
                    raise self._broken
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    outstanding = sorted(
                        set(range(self.parties)) - self._arrived
                    )
                    raise CheckpointError(
                        f"checkpoint phase {self.name!r} timed out after "
                        f"{timeout:.0f}s: arrived ranks "
                        f"{sorted(self._arrived)}, outstanding ranks "
                        f"{outstanding}"
                    )
                self._cv.wait(timeout=min(backoff, remaining))
                backoff = min(backoff * 2, 2.0)

    def release(self) -> None:
        """Open the gate without running the action (round abort): every
        waiter returns and re-checks its round attempt."""
        with self._cv:
            self._arrived.clear()
            self._cycle += 1
            self._cv.notify_all()

    def break_(self, exc: BaseException) -> None:
        """Terminal abort: current and future waiters raise ``exc``."""
        with self._cv:
            self._broken = exc
            self._cv.notify_all()


class CheckpointCoordinator:
    """Sequences the global checkpoint phases for one simulated job."""

    def __init__(
        self,
        nranks: int,
        ckpt_dir: str,
        fs_profile: FilesystemProfile,
        loop_lag_window: int = 4,
        phase_timeout: float = 300.0,
        round_retries: int = 2,
        chunk_store=None,
        ckpt_cost: Optional[CheckpointCostModel] = None,
        save_workers: int = 0,
        keep_generations: Optional[int] = None,
        async_save: bool = False,
    ):
        self.nranks = nranks
        self.ckpt_dir = ckpt_dir
        self.fs_profile = fs_profile
        self.loop_lag_window = loop_lag_window
        self.phase_timeout = phase_timeout
        self.round_retries = round_retries
        self.generation = 0

        # Format-5 incremental pipeline (all None/0 -> pure format 4).
        # chunk_store: repro.mana.chunkstore.ChunkStore for this job's
        # ckpt_dir; ckpt_cost charges virtual time from byte counts;
        # save_workers > 1 fans per-rank encodes out to a TaskPool;
        # keep_generations prunes + GCs after each completed round.
        self.chunk_store = chunk_store
        self.ckpt_cost = ckpt_cost or CheckpointCostModel()
        self.save_workers = save_workers
        self.keep_generations = keep_generations
        self._save_pool = None
        self._save_pool_lock = threading.Lock()
        #: Dedup summary of the most recent completed round (or None).
        self.last_dedup: Optional[Dict] = None

        # Asynchronous (snapshot + background drain) saves, format 5
        # only.  Ranks stage their pickled snapshots at the save barrier
        # and resume; a single background drainer encodes and writes
        # them (PROTOCOLS.md §11).
        self.async_save = async_save
        self._drainer = None
        self._drainer_lock = threading.Lock()
        # rank -> {"path", "image", "blob"} staged this round.
        self._async_blobs: Dict[int, Dict] = {}
        # Rank 0's manifest fields, staged alongside its blob (the
        # drainer writes the manifest — rank 0 must not, or restarts
        # could see a manifest whose images are still draining).
        self._async_manifest: Optional[Dict] = None
        # Set by _on_resumed once the round's ranks pass the resume
        # gate; the drainer completes the ticket only after it fires.
        self._async_resume_event: Optional[threading.Event] = None
        # Modeled timing of the drain in flight: {"generation",
        # "start_vtime", "logical_mean"} — consumed by the *next*
        # round's overrun accounting.
        self._drain_pending: Optional[Dict] = None

        self._lock = threading.Lock()
        self._intent: Optional[CheckpointTicket] = None
        self._aborted: Optional[BaseException] = None
        # Optional fault injector (repro.faults.FaultInjector); consulted
        # at round start for injected coordinator stalls.
        self.injector = None
        # Optional callable invoked whenever checkpoint intent is armed:
        # the runtime wires it to Fabric.wake so ranks blocked in an
        # event-driven wait notice the intent immediately instead of
        # after the wait's safety-net timeout.
        self.waker: Optional[Callable[[], None]] = None
        # Wakes finalize_rank waiters (shares self._lock).
        self._fin_cv = threading.Condition(self._lock)

        # Phase gates (reusable).  quiesce -> drained -> saved -> resumed.
        self._g_quiesce = _PhaseGate("quiesce", nranks, self._on_quiesced)
        self._g_drained = _PhaseGate("drain", nranks)
        self._g_saved = _PhaseGate("save", nranks, self._on_saved)
        self._g_resumed = _PhaseGate("resume", nranks, self._on_resumed)
        self._gates = (
            self._g_quiesce, self._g_drained, self._g_saved, self._g_resumed,
        )
        # Coarse phase label for diagnostics (phase_snapshot).
        self._phase = "idle"

        # Round abort/retry state: the attempt counter increments on
        # every abort_round; ranks capture it at begin_participation and
        # every phase call re-checks it.
        self._round_attempt = 0
        self._retries_left = round_retries
        self.round_events: List[dict] = []

        # Per-checkpoint scratch (filled by ranks, read by gate actions).
        self._rank_clocks: Dict[int, float] = {}
        self._rank_bytes: Dict[int, int] = {}
        # Per-rank format-5 save statistics (chunks written/reused etc.).
        self._rank_savestats: Dict[int, Dict] = {}
        self._ckpt_start_time = 0.0
        self._ckpt_duration = 0.0

        # LOOP-kind election state.
        self._loop_target: Optional[int] = None
        self._loop_name: Optional[str] = None

        # Deferred triggers: arm a checkpoint when a loop reaches an
        # iteration (deterministic alternative to wall-clock requests).
        self._pending_triggers: list = []

        # Interval checkpointing (production MANA's --ckpt-interval):
        # a LOOP checkpoint fires whenever the reporting rank's virtual
        # clock has advanced `interval` seconds past the last checkpoint.
        self._interval: Optional[float] = None
        self._interval_mode = CheckpointMode.CONTINUE
        self._last_ckpt_vtime = 0.0
        self.interval_tickets: list = []

        # Trivial-barrier service: (comm_key, seq) -> set of arrived ranks.
        self._tb_lock = threading.Lock()
        self._tb_cv = threading.Condition(self._tb_lock)
        self._tb_arrivals: Dict[Tuple, Set[int]] = {}

        # Finalize tracking: once every rank reaches MPI_Finalize,
        # checkpointing is disabled for good.
        self._finalized: Set[int] = set()
        self._ckpt_disabled = False

        # Elastic-restore provenance (PROTOCOLS.md §12, step 4): set by
        # Launcher.elastic_restart via stamp_elastic; every manifest this
        # job writes carries it, so checkpoint chains record across
        # which world sizes / implementations the job has moved.
        self.elastic_provenance: Optional[Dict] = None

    # ------------------------------------------------------------------
    # elastic-restore provenance
    # ------------------------------------------------------------------
    _ELASTIC_KEYS = (
        "from_nranks", "to_nranks", "from_impl", "to_impl",
        "source_generation",
    )

    def stamp_elastic(self, provenance: Dict) -> None:
        """Validate and install the elastic-restore provenance stamped
        into every manifest this coordinator writes from now on."""
        missing = [k for k in self._ELASTIC_KEYS if k not in provenance]
        if missing:
            raise CheckpointError(
                f"elastic provenance is missing keys {missing}; "
                f"expected {list(self._ELASTIC_KEYS)}"
            )
        if provenance["to_nranks"] != self.nranks:
            raise CheckpointError(
                f"elastic provenance claims to_nranks="
                f"{provenance['to_nranks']} but this coordinator drives "
                f"{self.nranks} ranks"
            )
        self.elastic_provenance = dict(provenance)

    # ------------------------------------------------------------------
    # request side
    # ------------------------------------------------------------------
    def request_checkpoint(
        self,
        kind: str = CheckpointKind.IN_SESSION,
        mode: str = CheckpointMode.CONTINUE,
    ) -> CheckpointTicket:
        """Arm a checkpoint; ranks will notice at their next safe point."""
        if kind not in (CheckpointKind.IN_SESSION, CheckpointKind.LOOP):
            raise ValueError(f"unknown checkpoint kind {kind!r}")
        if mode not in (
            CheckpointMode.CONTINUE, CheckpointMode.RELAUNCH,
            CheckpointMode.EXIT,
        ):
            raise ValueError(f"unknown checkpoint mode {mode!r}")
        with self._lock:
            self._raise_if_aborted()
            if self._intent is not None:
                raise CheckpointError(
                    "a checkpoint is already in progress; wait for its "
                    "ticket before requesting another"
                )
            self.generation += 1
            ticket = CheckpointTicket(self.generation, kind, mode,
                                      _coord=self)
            self._arm_round_locked(ticket)
        self._notify_intent()
        return ticket

    def _arm_round_locked(self, ticket: CheckpointTicket) -> None:
        """Install ``ticket`` as the active intent and reset per-round
        scratch.  Caller holds self._lock."""
        self._loop_target = None
        self._loop_name = None
        self._rank_clocks.clear()
        self._rank_bytes.clear()
        self._rank_savestats.clear()
        self._round_attempt = 0
        self._retries_left = self.round_retries
        self._intent = ticket

    def _notify_intent(self) -> None:
        """Intent was just armed (or a round aborted): wake every
        event-driven waiter (fabric waits via the waker hook,
        trivial-barrier and finalize waiters via their condition
        variables).  Called WITHOUT self._lock held — the waker takes
        the fabric's lock."""
        waker = self.waker
        if waker is not None:
            waker()
        with self._tb_cv:
            self._tb_cv.notify_all()
        with self._fin_cv:
            self._fin_cv.notify_all()

    def checkpoint_at_iteration(
        self,
        loop_name: str,
        iteration: int,
        kind: str = CheckpointKind.IN_SESSION,
        mode: str = CheckpointMode.CONTINUE,
    ) -> CheckpointTicket:
        """Arm a checkpoint that fires when any rank's resumable loop
        ``loop_name`` first reaches ``iteration``.  Deterministic — no
        wall-clock race with the job."""
        with self._lock:
            self._raise_if_aborted()
            self.generation += 1
            ticket = CheckpointTicket(self.generation, kind, mode,
                                      _coord=self)
            self._pending_triggers.append(
                {"loop": loop_name, "iteration": iteration, "ticket": ticket}
            )
            return ticket

    def enable_interval_checkpoints(
        self, interval: float, mode: str = CheckpointMode.CONTINUE
    ) -> None:
        """Arm periodic LOOP-kind checkpoints every ``interval`` virtual
        seconds (measured on whichever rank reports progress first)."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        with self._lock:
            self._interval = interval
            self._interval_mode = mode

    def note_loop_progress(
        self, loop_name: str, iteration: int, vtime: Optional[float] = None
    ) -> None:
        """Called by ctx.loop at every iteration top (cheap when no
        triggers are armed)."""
        if not self._pending_triggers and self._interval is None:
            return
        armed = False
        with self._lock:
            if self._intent is not None or self._ckpt_disabled:
                return
            for trig in self._pending_triggers:
                if trig["loop"] == loop_name and iteration >= trig["iteration"]:
                    self._pending_triggers.remove(trig)
                    self._arm_round_locked(trig["ticket"])
                    if trig["ticket"].kind == CheckpointKind.LOOP:
                        # Deterministic election: the park target derives
                        # from the trigger's iteration, not from whichever
                        # rank happens to poll first after arming.
                        self._loop_target = (
                            max(iteration, trig["iteration"])
                            + self.loop_lag_window
                        )
                        self._loop_name = loop_name
                    armed = True
                    break
            if (
                not armed
                and self._interval is not None
                and vtime is not None
                and vtime - self._last_ckpt_vtime >= self._interval
            ):
                self._last_ckpt_vtime = vtime
                self.generation += 1
                ticket = CheckpointTicket(
                    self.generation, CheckpointKind.LOOP,
                    self._interval_mode, _coord=self,
                )
                self.interval_tickets.append(ticket)
                self._arm_round_locked(ticket)
                armed = True
        if armed:
            self._notify_intent()

    @property
    def intent(self) -> Optional[CheckpointTicket]:
        return self._intent

    def intent_kind(self) -> Optional[str]:
        t = self._intent
        return None if t is None else t.kind

    def should_park_now(self) -> bool:
        """True when an IN_SESSION checkpoint wants this rank to park at
        the current (arbitrary) safe point."""
        if self._ckpt_disabled:
            return False
        t = self._intent
        return t is not None and t.kind == CheckpointKind.IN_SESSION

    def finalize_rank(self, rank: int, park_check) -> None:
        """MPI_Finalize under MANA: the rank stays available for
        checkpoints until *every* rank has finalized (the moral of real
        MANA keeping its checkpoint thread alive until teardown).  When
        the last rank arrives, checkpointing is disabled and any armed
        but unstarted request is cancelled."""
        while True:
            with self._fin_cv:
                self._raise_if_aborted()
                self._finalized.add(rank)
                self._fin_cv.notify_all()
                if len(self._finalized) == self.nranks:
                    if not self._ckpt_disabled:
                        self._ckpt_disabled = True
                        tickets = [
                            tr["ticket"] for tr in self._pending_triggers
                        ]
                        self._pending_triggers.clear()
                        if self._intent is not None:
                            tickets.append(self._intent)
                            self._intent = None
                        for t in tickets:
                            if t.error is None:
                                t.error = CheckpointError(
                                    "checkpoint cancelled: all ranks "
                                    "reached MPI_Finalize first"
                                )
                            t._done.set()
                    return
                if self._ckpt_disabled:
                    return
                if self._intent is None:
                    # Nothing to park for: sleep until another rank
                    # finalizes or intent arms (timeout = safety net).
                    self._fin_cv.wait(timeout=0.05)
            park_check()

    # ------------------------------------------------------------------
    # LOOP-kind election
    # ------------------------------------------------------------------
    def loop_poll(self, loop_name: str, iteration: int) -> bool:
        """Called by every rank at each resumable-loop iteration top.

        Elects a common target iteration (first observer's iteration plus
        the lag window) and returns True exactly when this rank should
        park.  Requires the application's rank skew to stay below the lag
        window (our proxy apps synchronize at least every few iterations).
        """
        t = self._intent
        if t is None or t.kind != CheckpointKind.LOOP:
            return False
        with self._lock:
            if self._intent is not t:  # completed meanwhile
                return False
            if self._loop_target is None:
                self._loop_target = iteration + self.loop_lag_window
                self._loop_name = loop_name
            if self._loop_name != loop_name:
                return False  # a different loop; not the elected one
            if iteration > self._loop_target:
                raise CheckpointError(
                    f"rank skew exceeded the loop lag window: iteration "
                    f"{iteration} > target {self._loop_target}; increase "
                    f"loop_lag_window"
                )
            return iteration == self._loop_target

    def loop_target(self) -> Optional[int]:
        return self._loop_target

    def loop_cancel(self, reason: str) -> None:
        """Cancel a LOOP-kind checkpoint that can no longer be honored
        (the elected iteration lies beyond the loop's end).  Idempotent;
        every rank takes this path because loop bounds are uniform."""
        with self._lock:
            t = self._intent
            if t is None or t.kind != CheckpointKind.LOOP:
                return
            self._intent = None
            self._loop_target = None
            self._loop_name = None
            if t.error is None:
                t.error = CheckpointError(f"loop checkpoint cancelled: {reason}")
            t._done.set()

    # ------------------------------------------------------------------
    # round lifecycle (called from ManaRank.checkpoint_participate)
    # ------------------------------------------------------------------
    def begin_participation(self, rank: int) -> int:
        """A rank is entering the checkpoint round: returns the round
        attempt it must carry through every phase call.  May raise
        :class:`CheckpointRoundAborted` when an injected coordinator
        stall aborts the round at its start."""
        with self._lock:
            self._raise_if_aborted()
            t = self._intent
            if t is None:
                raise CheckpointRoundAborted(
                    "checkpoint intent disarmed before the round started"
                )
            attempt = self._round_attempt
            generation = t.generation
        if self.injector is not None and self.injector.round_abort_requested(
            generation, attempt + 1
        ):
            self.abort_round(
                f"injected coordinator stall on attempt {attempt + 1}"
            )
            raise CheckpointRoundAborted(
                f"checkpoint round {generation} attempt {attempt + 1} "
                f"aborted: injected coordinator stall"
            )
        return attempt

    def abort_round(self, reason: str) -> None:
        """Abort the in-flight checkpoint round: every rank parked at a
        phase gate is released and re-checks its attempt (raising
        :class:`CheckpointRoundAborted`).  While retries remain the same
        ticket stays armed, so ranks re-run the round immediately;
        otherwise the ticket fails with a descriptive error."""
        with self._lock:
            if self._aborted is not None:
                return
            t = self._intent
            if t is None:
                return
            self._round_attempt += 1
            retrying = self._retries_left > 0
            self.round_events.append({
                "event": "round-abort",
                "generation": t.generation,
                "attempt": self._round_attempt,
                "reason": reason,
                "retrying": retrying,
            })
            self._rank_clocks.clear()
            self._rank_bytes.clear()
            self._rank_savestats.clear()
            self._async_blobs.clear()
            self._async_manifest = None
            ev = self._async_resume_event
            self._async_resume_event = None
            self._phase = "idle"
            if retrying:
                self._retries_left -= 1
            else:
                self._intent = None
                self._loop_target = None
                self._loop_name = None
                if t.error is None:
                    t.error = CheckpointError(
                        f"checkpoint generation {t.generation} failed "
                        f"after {self._round_attempt} aborted attempt(s): "
                        f"{reason}"
                    )
                t._done.set()
        # Outside the coordinator lock (gate CVs may take it in actions).
        if ev is not None:
            # A drain job was already submitted for this round: unblock
            # the drainer (it completes the ticket idempotently).
            ev.set()
        for g in self._gates:
            g.release()
        self._notify_intent()

    def _check_attempt(self, attempt: int) -> None:
        """Raise when the round was aborted since this rank captured
        ``attempt`` (before or while it waited at a gate)."""
        with self._lock:
            self._raise_if_aborted()
            if attempt != self._round_attempt:
                raise CheckpointRoundAborted(
                    f"checkpoint round aborted (attempt {attempt + 1} "
                    f"superseded by {self._round_attempt + 1})"
                )

    # ------------------------------------------------------------------
    # phase gates (called from ManaRank.checkpoint_participate)
    # ------------------------------------------------------------------
    def quiesce(self, rank: int, clock_now: float, attempt: int = 0) -> None:
        # Pre-wait check: a rank whose round was already aborted must not
        # enqueue at the gate (it would open with mixed attempts).
        self._check_attempt(attempt)
        with self._lock:
            self._raise_if_aborted()
            self._rank_clocks[rank] = clock_now
            self._phase = "quiesce"
        self._g_quiesce.wait(rank, timeout=self.phase_timeout)
        self._check_attempt(attempt)

    def drained(self, rank: int = 0, attempt: int = 0) -> None:
        self._check_attempt(attempt)
        self._phase = "drain"
        self._g_drained.wait(rank, timeout=self.phase_timeout)
        self._check_attempt(attempt)

    def saved(self, rank: int, image_bytes: int, attempt: int = 0,
              stats: Optional[Dict] = None) -> None:
        """``image_bytes`` stays the rank's *logical* upper-half size
        (what Table 3 models); format-5 ``stats`` carry the physical
        write accounting (chunks written/reused, bytes written) that the
        cost model and the dedup report consume."""
        self._check_attempt(attempt)
        with self._lock:
            self._raise_if_aborted()
            self._rank_bytes[rank] = image_bytes
            if stats is not None:
                self._rank_savestats[rank] = stats
            self._phase = "save"
        self._g_saved.wait(rank, timeout=self.phase_timeout)
        self._check_attempt(attempt)

    # ------------------------------------------------------------------
    # parallel save fan-out
    # ------------------------------------------------------------------
    def save_pool(self):
        """The shared chunk-write :class:`TaskPool` (``save_workers >
        1``), lazily created and reused across rounds; None when
        pooling is off."""
        if self.save_workers <= 1:
            return None
        pool = self._save_pool
        if pool is None:
            with self._save_pool_lock:
                pool = self._save_pool
                if pool is None:
                    from repro.harness.parallel import TaskPool

                    pool = TaskPool(self.save_workers, name="ckpt-save")
                    self._save_pool = pool
        return pool

    def run_save(self, fn: Callable[[object], object]):
        """Run one rank's encode+write: ``fn`` receives the shared save
        pool (or None) and is executed in the calling rank thread.

        The writer fans its ~256 KiB chunk runs into the pool, so work
        items are *chunk runs*, not whole ranks — chunks from every
        rank interleave across ``save_workers`` and one large rank no
        longer serializes the round (the old design submitted each
        rank's entire encode as a single pool item).  Exceptions
        surface in the calling rank thread — injected faults keep their
        per-rank crash semantics — and virtual time is charged
        analytically by :meth:`_on_saved`, so pooling changes
        wall-clock only, never the simulation."""
        return fn(self.save_pool())

    def _shutdown_save_pool(self) -> None:
        with self._save_pool_lock:
            pool, self._save_pool = self._save_pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # asynchronous saves (snapshot + background drain)
    # ------------------------------------------------------------------
    def async_round(self) -> bool:
        """True when the current round snapshots + drains instead of
        writing synchronously (needs a chunk store: the drainer writes
        format 5 only)."""
        return self.async_save and self.chunk_store is not None

    def stage_async_blob(
        self, rank: int, path: str, image, blob: bytes,
        manifest: Optional[Dict] = None,
    ) -> None:
        """Stage one rank's pickled snapshot for the background drain.
        Rank 0 passes the ``manifest`` fields the drainer will write
        once every image of the generation is durable."""
        with self._lock:
            self._async_blobs[rank] = {
                "path": path, "image": image, "blob": blob,
            }
            if manifest is not None:
                self._async_manifest = manifest

    def _ensure_drainer(self):
        d = self._drainer
        if d is None:
            with self._drainer_lock:
                d = self._drainer
                if d is None:
                    from repro.mana.asyncsave import AsyncSaveDrainer

                    d = AsyncSaveDrainer(self)
                    self._drainer = d
        return d

    def drain_async(self, timeout: Optional[float] = None):
        """Block (wall-clock) until any in-flight background drain has
        finished; returns the drainer's last-drain summary or None.
        Virtual time is unaffected — only the *next* checkpoint charges
        drain overrun."""
        d = self._drainer
        if d is None:
            return None
        return d.wait_idle(timeout)

    def _shutdown_drainer(self) -> None:
        with self._drainer_lock:
            d, self._drainer = self._drainer, None
        if d is not None:
            d.shutdown()

    def resumed(self, rank: int = 0, attempt: int = 0) -> None:
        self._phase = "resume"
        self._g_resumed.wait(rank, timeout=self.phase_timeout)
        # No attempt check: the round is complete once the resume gate
        # opens (_on_resumed already cleared the intent).

    def checkpoint_timing(self) -> Tuple[float, float]:
        """(global start time, duration) of the checkpoint in progress —
        valid after the saved barrier."""
        return self._ckpt_start_time, self._ckpt_duration

    def phase_snapshot(self) -> str:
        """One-line description of where the checkpoint round stands —
        used by timeout errors to name the stuck phase and ranks.

        Names the round (generation, kind/mode, retry attempt), the
        stuck gate with arrived vs outstanding ranks, and whether the
        async drainer is still busy — enough to diagnose a hang from
        the exception text alone.
        """
        phase = self._phase
        bits = [f"coordinator phase {phase!r}"]
        t = self._intent
        if t is not None:
            round_desc = f"generation {t.generation} ({t.kind}/{t.mode}"
            if self._round_attempt:
                round_desc += f", retry attempt {self._round_attempt + 1}"
            bits.append(round_desc + ")")
        gate = {
            "quiesce": self._g_quiesce,
            "drain": self._g_drained,
            "save": self._g_saved,
            "resume": self._g_resumed,
        }.get(phase)
        if gate is not None:
            arrived = gate.arrived_ranks()
            outstanding = sorted(set(range(self.nranks)) - set(arrived))
            bits.append(
                f"arrived ranks {arrived}, outstanding ranks {outstanding}"
            )
        d = self._drainer
        if d is not None and not d._idle.is_set():
            bits.append("async drain in flight")
        return "; ".join(bits)

    def _on_quiesced(self) -> None:
        self._ckpt_start_time = max(self._rank_clocks.values())

    def _on_saved(self) -> None:
        sizes = list(self._rank_bytes.values())
        mean = sum(sizes) / len(sizes) if sizes else 0
        if self._async_blobs:
            self._on_saved_async(sizes, mean)
            return
        stats = dict(self._rank_savestats)
        dedup = None
        if stats and len(stats) == len(sizes):
            # Format-5 round: charge the incremental pipeline's analytic
            # cost.  The written fraction measured on the real pickle
            # bytes scales the *logical* (simulated) payload, so proxy
            # apps with simulated_state_bytes see proportional savings.
            payload = sum(s["payload_bytes"] for s in stats.values())
            written = sum(s["bytes_written"] for s in stats.values())
            frac = written / payload if payload else 1.0
            written_logical = int(mean * min(1.0, frac))
            self._ckpt_duration = self.ckpt_cost.save_time(
                self.fs_profile, self.nranks, int(mean), written_logical
            )
            dedup = {
                "format": 5,
                "chunks_total": sum(
                    s["chunks_total"] for s in stats.values()
                ),
                "chunks_written": sum(
                    s["chunks_written"] for s in stats.values()
                ),
                "chunks_reused": sum(
                    s["chunks_reused"] for s in stats.values()
                ),
                "bytes_written": written,
                "payload_bytes": payload,
                "written_fraction": round(frac, 6),
            }
        else:
            # Format-4 round: the monolithic Table 3 cost.
            self._ckpt_duration = checkpoint_time(
                self.fs_profile, self.nranks, int(mean)
            )
        self.last_dedup = dedup
        t = self._intent
        if t is not None:
            t.result.update(
                {
                    "generation": t.generation,
                    "kind": t.kind,
                    "mode": t.mode,
                    "bytes_per_rank": sizes,
                    "mean_bytes_per_rank": mean,
                    "ckpt_time": self._ckpt_duration,
                    "mb_per_s_per_rank": (
                        mean / self._ckpt_duration / 1e6
                        if self._ckpt_duration > 0
                        else float("inf")
                    ),
                    "loop_target": self._loop_target,
                }
            )
            if dedup is not None:
                t.result["dedup"] = dedup

    def _on_saved_async(self, sizes: List[int], mean: float) -> None:
        """Gate action of the save barrier in an **async** round: charge
        only snapshot + drain-overrun to virtual time, hand the staged
        blobs to the background drainer, and release the ranks.

        Back-pressure first: at most one drain is ever in flight, so
        the last-arriving rank blocks (wall-clock only) until the
        previous generation's drain has settled.  The *overrun* charged
        to virtual time is analytic — the previous drain's modeled
        completion (its start vtime + ``drain_time`` over its byte
        counts) minus this round's start — never a wall-clock
        measurement, so recovery traces stay deterministic no matter
        how fast the drainer actually ran.
        """
        t = self._intent
        drainer = self._ensure_drainer()
        prev = drainer.wait_idle()
        start = self._ckpt_start_time
        overrun = 0.0
        pend = self._drain_pending
        if (
            pend is not None
            and prev is not None
            and prev.get("generation") == pend["generation"]
            and prev.get("dedup") is not None
        ):
            d = prev["dedup"]
            payload = d["payload_bytes"]
            frac = d["bytes_written"] / payload if payload else 1.0
            written_logical = int(pend["logical_mean"] * min(1.0, frac))
            drain_t = self.ckpt_cost.drain_time(
                self.fs_profile, self.nranks,
                int(pend["logical_mean"]), written_logical,
            )
            overrun = max(0.0, pend["start_vtime"] + drain_t - start)
        snap_t = self.ckpt_cost.snapshot_time(
            self.fs_profile, self.nranks, int(mean)
        )
        self._ckpt_duration = overrun + snap_t
        self._drain_pending = {
            "generation": t.generation if t is not None else self.generation,
            "start_vtime": start + self._ckpt_duration,
            "logical_mean": mean,
        }
        resume_event = threading.Event()
        self._async_resume_event = resume_event
        manifest = self._async_manifest
        self._async_manifest = None
        if manifest is not None:
            manifest.setdefault("loop_target", self._loop_target)
        blobs = dict(self._async_blobs)
        self._async_blobs = {}
        if t is not None:
            t.result.update(
                {
                    "generation": t.generation,
                    "kind": t.kind,
                    "mode": t.mode,
                    "bytes_per_rank": sizes,
                    "mean_bytes_per_rank": mean,
                    "ckpt_time": self._ckpt_duration,
                    "mb_per_s_per_rank": (
                        mean / self._ckpt_duration / 1e6
                        if self._ckpt_duration > 0
                        else float("inf")
                    ),
                    "loop_target": self._loop_target,
                    "async": True,
                    "snapshot_time": snap_t,
                    "drain_overrun": overrun,
                }
            )
        from repro.mana.asyncsave import DrainJob

        drainer.submit(DrainJob(
            generation=t.generation if t is not None else self.generation,
            ticket=t,
            ranks=blobs,
            manifest=manifest,
            resume_event=resume_event,
            vtime=start,
            logical_mean=mean,
        ))

    def _on_resumed(self) -> None:
        with self._lock:
            t = self._intent
            self._intent = None
            self._phase = "idle"
            ev = self._async_resume_event
            self._async_resume_event = None
        if ev is not None:
            # Async round: the ranks are free, but the ticket completes
            # only when the drainer has made the generation durable.
            ev.set()
            return
        if t is not None:
            t._done.set()

    # ------------------------------------------------------------------
    # trivial-barrier service for two-phase collectives
    # ------------------------------------------------------------------
    def trivial_barrier(
        self,
        comm_key: Tuple,
        seq: int,
        rank: int,
        member_world_ranks: Tuple[int, ...],
        park_check: Callable[[], None],
    ) -> None:
        """Block until every member of the communicator has arrived at
        collective #seq, staying responsive to checkpoint intent.

        ``park_check`` is invoked while waiting; it may detour into a
        full checkpoint (and return afterwards).  Arrival is recorded by
        world rank and is idempotent.
        """
        key = (comm_key, seq)
        members = set(member_world_ranks)
        while True:
            self._raise_if_aborted()
            want_park = False
            with self._tb_cv:
                state = self._tb_arrivals.setdefault(
                    key, {"arrived": set(), "committed": False}
                )
                state["arrived"].add(rank)
                if state["committed"] or members.issubset(state["arrived"]):
                    # Commit point: from here, *no* member may park for a
                    # checkpoint before entering the collective — the
                    # two-phase-commit guarantee that makes the critical
                    # section deadlock-free.
                    state["committed"] = True
                    self._tb_cv.notify_all()
                    stale = [
                        k for k in self._tb_arrivals
                        if k[0] == comm_key and k[1] < seq - 2
                    ]
                    for k in stale:
                        del self._tb_arrivals[k]
                    return
                if (
                    self._intent is not None
                    and self._intent.kind == CheckpointKind.IN_SESSION
                    and not self._ckpt_disabled
                ):
                    # Leave the barrier BEFORE parking so partners cannot
                    # observe a full set that includes a parked rank.
                    state["arrived"].discard(rank)
                    want_park = True
                else:
                    # Arrivals and intent arming both notify this CV, so
                    # the timeout is only a safety net.
                    self._tb_cv.notify_all()
                    self._tb_cv.wait(timeout=0.05)
            if want_park:
                park_check()

    def cancel_pending(self, reason: str) -> None:
        """Fail any armed-but-unstarted checkpoint (e.g. the job finished
        before any rank reached a safe point) and any unfired trigger."""
        with self._lock:
            tickets = [t["ticket"] for t in self._pending_triggers]
            self._pending_triggers.clear()
            if self._intent is not None:
                tickets.append(self._intent)
                self._intent = None
            for t in tickets:
                if t.error is None:
                    t.error = CheckpointError(
                        f"checkpoint cancelled: {reason}"
                    )
                t._done.set()
        # Finish any in-flight background drain (its generation must be
        # durable before the job is declared over), then stop the pools.
        self._shutdown_drainer()
        self._shutdown_save_pool()

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def abort(self, exc: Optional[BaseException] = None) -> None:
        with self._lock:
            self._aborted = exc or CheckpointError("job aborted")
            tickets = [tr["ticket"] for tr in self._pending_triggers]
            self._pending_triggers.clear()
            if self._intent is not None:
                tickets.append(self._intent)
            for t in tickets:
                if t.error is None:
                    t.error = self._aborted
                t._done.set()
            self._fin_cv.notify_all()  # shares self._lock
        # Outside the coordinator lock (gate CVs may take it in actions).
        for g in self._gates:
            g.break_(self._aborted)
        with self._tb_cv:
            self._tb_cv.notify_all()
        # Wake fabric waiters too: ranks blocked in event-driven waits
        # must notice the abort now, not at their safety-net timeout.
        waker = self.waker
        if waker is not None:
            waker()
        # Release a drainer parked on the resume event of a round that
        # will never resume (it checks _aborted and completes).
        ev = self._async_resume_event
        if ev is not None:
            ev.set()
        self._shutdown_save_pool()

    def _raise_if_aborted(self) -> None:
        if self._aborted is not None:
            raise self._aborted
