"""The checkpoint coordinator — MANA's out-of-band control plane.

Real MANA inherits a coordinator process from DMTCP: a socket-connected
daemon that broadcasts checkpoint requests and sequences the global
phases.  Here the coordinator is a shared object with reusable barriers;
it carries *no application or MPI data* — everything payload-bearing
flows through the lower-half MPI library, as in the real system.

Two checkpoint kinds (DESIGN.md §1, restart modes):

* ``IN_SESSION`` — ranks park at *any* wrapper safe point (any MPI call
  boundary, or inside a compute region, standing in for MANA's
  checkpoint signal).  Full fidelity for quiesce/drain/rebind; the
  image is written but threads stay alive.
* ``LOOP`` — ranks agree (via the coordinator's iteration election) on a
  common future loop iteration and park exactly there; the image is
  cold-restartable: a brand-new session can resume it.

The coordinator also hosts the *trivial barrier* used by collective
wrappers (two-phase collectives): ranks register arrival at
(communicator key, sequence) and poll until the member set is complete,
remaining responsive to checkpoint intent while they wait.  Arrival is
idempotent, so a rank that detours into a checkpoint and comes back
re-enters safely.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple

from repro.simtime.cost import FilesystemProfile, checkpoint_time
from repro.util.errors import CheckpointError


class CheckpointKind:
    IN_SESSION = "in-session"
    LOOP = "loop"


class CheckpointMode:
    """What happens to the running job after the image is written."""

    CONTINUE = "continue"    # keep the current lower half (DMTCP resume)
    RELAUNCH = "relaunch"    # discard the lower half, replay into a new one
    EXIT = "exit"            # preemption: unwind the job after saving


@dataclass
class CheckpointTicket:
    """Handle returned to whoever requested a checkpoint."""

    generation: int
    kind: str
    mode: str
    _done: threading.Event = field(default_factory=threading.Event)
    result: Dict = field(default_factory=dict)
    error: Optional[BaseException] = None

    def wait(self, timeout: float = 300.0) -> Dict:
        if not self._done.wait(timeout):
            raise CheckpointError("checkpoint did not complete in time")
        if self.error is not None:
            raise self.error
        return self.result


class CheckpointCoordinator:
    """Sequences the global checkpoint phases for one simulated job."""

    def __init__(
        self,
        nranks: int,
        ckpt_dir: str,
        fs_profile: FilesystemProfile,
        loop_lag_window: int = 4,
    ):
        self.nranks = nranks
        self.ckpt_dir = ckpt_dir
        self.fs_profile = fs_profile
        self.loop_lag_window = loop_lag_window
        self.generation = 0

        self._lock = threading.Lock()
        self._intent: Optional[CheckpointTicket] = None
        self._aborted: Optional[BaseException] = None
        # Optional callable invoked whenever checkpoint intent is armed:
        # the runtime wires it to Fabric.wake so ranks blocked in an
        # event-driven wait notice the intent immediately instead of
        # after the wait's safety-net timeout.
        self.waker: Optional[Callable[[], None]] = None
        # Wakes finalize_rank waiters (shares self._lock).
        self._fin_cv = threading.Condition(self._lock)

        # Phase barriers (reusable).  quiesce -> drained -> saved -> resumed.
        self._bar_quiesce = threading.Barrier(nranks, action=self._on_quiesced)
        self._bar_drained = threading.Barrier(nranks)
        self._bar_saved = threading.Barrier(nranks, action=self._on_saved)
        self._bar_resumed = threading.Barrier(nranks, action=self._on_resumed)

        # Per-checkpoint scratch (filled by ranks, read by barrier actions).
        self._rank_clocks: Dict[int, float] = {}
        self._rank_bytes: Dict[int, int] = {}
        self._ckpt_start_time = 0.0
        self._ckpt_duration = 0.0

        # LOOP-kind election state.
        self._loop_target: Optional[int] = None
        self._loop_name: Optional[str] = None

        # Deferred triggers: arm a checkpoint when a loop reaches an
        # iteration (deterministic alternative to wall-clock requests).
        self._pending_triggers: list = []

        # Interval checkpointing (production MANA's --ckpt-interval):
        # a LOOP checkpoint fires whenever the reporting rank's virtual
        # clock has advanced `interval` seconds past the last checkpoint.
        self._interval: Optional[float] = None
        self._interval_mode = CheckpointMode.CONTINUE
        self._last_ckpt_vtime = 0.0
        self.interval_tickets: list = []

        # Trivial-barrier service: (comm_key, seq) -> set of arrived ranks.
        self._tb_lock = threading.Lock()
        self._tb_cv = threading.Condition(self._tb_lock)
        self._tb_arrivals: Dict[Tuple, Set[int]] = {}

        # Finalize tracking: once every rank reaches MPI_Finalize,
        # checkpointing is disabled for good.
        self._finalized: Set[int] = set()
        self._ckpt_disabled = False

    # ------------------------------------------------------------------
    # request side
    # ------------------------------------------------------------------
    def request_checkpoint(
        self,
        kind: str = CheckpointKind.IN_SESSION,
        mode: str = CheckpointMode.CONTINUE,
    ) -> CheckpointTicket:
        """Arm a checkpoint; ranks will notice at their next safe point."""
        if kind not in (CheckpointKind.IN_SESSION, CheckpointKind.LOOP):
            raise ValueError(f"unknown checkpoint kind {kind!r}")
        if mode not in (
            CheckpointMode.CONTINUE, CheckpointMode.RELAUNCH,
            CheckpointMode.EXIT,
        ):
            raise ValueError(f"unknown checkpoint mode {mode!r}")
        with self._lock:
            self._raise_if_aborted()
            if self._intent is not None:
                raise CheckpointError(
                    "a checkpoint is already in progress; wait for its "
                    "ticket before requesting another"
                )
            self.generation += 1
            ticket = CheckpointTicket(self.generation, kind, mode)
            self._loop_target = None
            self._loop_name = None
            self._rank_clocks.clear()
            self._rank_bytes.clear()
            self._intent = ticket
        self._notify_intent()
        return ticket

    def _notify_intent(self) -> None:
        """Intent was just armed: wake every event-driven waiter (fabric
        waits via the waker hook, trivial-barrier and finalize waiters
        via their condition variables).  Called WITHOUT self._lock held —
        the waker takes the fabric's lock."""
        waker = self.waker
        if waker is not None:
            waker()
        with self._tb_cv:
            self._tb_cv.notify_all()
        with self._fin_cv:
            self._fin_cv.notify_all()

    def checkpoint_at_iteration(
        self,
        loop_name: str,
        iteration: int,
        kind: str = CheckpointKind.IN_SESSION,
        mode: str = CheckpointMode.CONTINUE,
    ) -> CheckpointTicket:
        """Arm a checkpoint that fires when any rank's resumable loop
        ``loop_name`` first reaches ``iteration``.  Deterministic — no
        wall-clock race with the job."""
        with self._lock:
            self._raise_if_aborted()
            self.generation += 1
            ticket = CheckpointTicket(self.generation, kind, mode)
            self._pending_triggers.append(
                {"loop": loop_name, "iteration": iteration, "ticket": ticket}
            )
            return ticket

    def enable_interval_checkpoints(
        self, interval: float, mode: str = CheckpointMode.CONTINUE
    ) -> None:
        """Arm periodic LOOP-kind checkpoints every ``interval`` virtual
        seconds (measured on whichever rank reports progress first)."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        with self._lock:
            self._interval = interval
            self._interval_mode = mode

    def note_loop_progress(
        self, loop_name: str, iteration: int, vtime: Optional[float] = None
    ) -> None:
        """Called by ctx.loop at every iteration top (cheap when no
        triggers are armed)."""
        if not self._pending_triggers and self._interval is None:
            return
        armed = False
        with self._lock:
            if self._intent is not None or self._ckpt_disabled:
                return
            for trig in self._pending_triggers:
                if trig["loop"] == loop_name and iteration >= trig["iteration"]:
                    self._pending_triggers.remove(trig)
                    self._loop_target = None
                    self._loop_name = None
                    self._rank_clocks.clear()
                    self._rank_bytes.clear()
                    self._intent = trig["ticket"]
                    armed = True
                    break
            if (
                not armed
                and self._interval is not None
                and vtime is not None
                and vtime - self._last_ckpt_vtime >= self._interval
            ):
                self._last_ckpt_vtime = vtime
                self.generation += 1
                ticket = CheckpointTicket(
                    self.generation, CheckpointKind.LOOP, self._interval_mode
                )
                self.interval_tickets.append(ticket)
                self._loop_target = None
                self._loop_name = None
                self._rank_clocks.clear()
                self._rank_bytes.clear()
                self._intent = ticket
                armed = True
        if armed:
            self._notify_intent()

    @property
    def intent(self) -> Optional[CheckpointTicket]:
        return self._intent

    def intent_kind(self) -> Optional[str]:
        t = self._intent
        return None if t is None else t.kind

    def should_park_now(self) -> bool:
        """True when an IN_SESSION checkpoint wants this rank to park at
        the current (arbitrary) safe point."""
        if self._ckpt_disabled:
            return False
        t = self._intent
        return t is not None and t.kind == CheckpointKind.IN_SESSION

    def finalize_rank(self, rank: int, park_check) -> None:
        """MPI_Finalize under MANA: the rank stays available for
        checkpoints until *every* rank has finalized (the moral of real
        MANA keeping its checkpoint thread alive until teardown).  When
        the last rank arrives, checkpointing is disabled and any armed
        but unstarted request is cancelled."""
        while True:
            with self._fin_cv:
                self._raise_if_aborted()
                self._finalized.add(rank)
                self._fin_cv.notify_all()
                if len(self._finalized) == self.nranks:
                    if not self._ckpt_disabled:
                        self._ckpt_disabled = True
                        tickets = [
                            tr["ticket"] for tr in self._pending_triggers
                        ]
                        self._pending_triggers.clear()
                        if self._intent is not None:
                            tickets.append(self._intent)
                            self._intent = None
                        for t in tickets:
                            if t.error is None:
                                t.error = CheckpointError(
                                    "checkpoint cancelled: all ranks "
                                    "reached MPI_Finalize first"
                                )
                            t._done.set()
                    return
                if self._ckpt_disabled:
                    return
                if self._intent is None:
                    # Nothing to park for: sleep until another rank
                    # finalizes or intent arms (timeout = safety net).
                    self._fin_cv.wait(timeout=0.05)
            park_check()

    # ------------------------------------------------------------------
    # LOOP-kind election
    # ------------------------------------------------------------------
    def loop_poll(self, loop_name: str, iteration: int) -> bool:
        """Called by every rank at each resumable-loop iteration top.

        Elects a common target iteration (first observer's iteration plus
        the lag window) and returns True exactly when this rank should
        park.  Requires the application's rank skew to stay below the lag
        window (our proxy apps synchronize at least every few iterations).
        """
        t = self._intent
        if t is None or t.kind != CheckpointKind.LOOP:
            return False
        with self._lock:
            if self._intent is not t:  # completed meanwhile
                return False
            if self._loop_target is None:
                self._loop_target = iteration + self.loop_lag_window
                self._loop_name = loop_name
            if self._loop_name != loop_name:
                return False  # a different loop; not the elected one
            if iteration > self._loop_target:
                raise CheckpointError(
                    f"rank skew exceeded the loop lag window: iteration "
                    f"{iteration} > target {self._loop_target}; increase "
                    f"loop_lag_window"
                )
            return iteration == self._loop_target

    def loop_target(self) -> Optional[int]:
        return self._loop_target

    def loop_cancel(self, reason: str) -> None:
        """Cancel a LOOP-kind checkpoint that can no longer be honored
        (the elected iteration lies beyond the loop's end).  Idempotent;
        every rank takes this path because loop bounds are uniform."""
        with self._lock:
            t = self._intent
            if t is None or t.kind != CheckpointKind.LOOP:
                return
            self._intent = None
            self._loop_target = None
            self._loop_name = None
            if t.error is None:
                t.error = CheckpointError(f"loop checkpoint cancelled: {reason}")
            t._done.set()

    # ------------------------------------------------------------------
    # phase barriers (called from ManaRank.checkpoint_participate)
    # ------------------------------------------------------------------
    def quiesce(self, rank: int, clock_now: float) -> None:
        with self._lock:
            self._rank_clocks[rank] = clock_now
        self._wait(self._bar_quiesce)

    def drained(self) -> None:
        self._wait(self._bar_drained)

    def saved(self, rank: int, image_bytes: int) -> None:
        with self._lock:
            self._rank_bytes[rank] = image_bytes
        self._wait(self._bar_saved)

    def resumed(self) -> None:
        self._wait(self._bar_resumed)

    def checkpoint_timing(self) -> Tuple[float, float]:
        """(global start time, duration) of the checkpoint in progress —
        valid after the saved barrier."""
        return self._ckpt_start_time, self._ckpt_duration

    def _on_quiesced(self) -> None:
        self._ckpt_start_time = max(self._rank_clocks.values())

    def _on_saved(self) -> None:
        sizes = list(self._rank_bytes.values())
        mean = sum(sizes) / len(sizes) if sizes else 0
        self._ckpt_duration = checkpoint_time(
            self.fs_profile, self.nranks, int(mean)
        )
        t = self._intent
        if t is not None:
            t.result.update(
                {
                    "generation": t.generation,
                    "kind": t.kind,
                    "mode": t.mode,
                    "bytes_per_rank": sizes,
                    "mean_bytes_per_rank": mean,
                    "ckpt_time": self._ckpt_duration,
                    "mb_per_s_per_rank": (
                        mean / self._ckpt_duration / 1e6
                        if self._ckpt_duration > 0
                        else float("inf")
                    ),
                    "loop_target": self._loop_target,
                }
            )

    def _on_resumed(self) -> None:
        with self._lock:
            t = self._intent
            self._intent = None
        if t is not None:
            t._done.set()

    def _wait(self, barrier: threading.Barrier) -> None:
        self._raise_if_aborted()
        try:
            barrier.wait(timeout=300.0)
        except threading.BrokenBarrierError:
            self._raise_if_aborted()
            raise CheckpointError(
                "checkpoint phase barrier broken (a rank died?)"
            ) from None

    # ------------------------------------------------------------------
    # trivial-barrier service for two-phase collectives
    # ------------------------------------------------------------------
    def trivial_barrier(
        self,
        comm_key: Tuple,
        seq: int,
        rank: int,
        member_world_ranks: Tuple[int, ...],
        park_check: Callable[[], None],
    ) -> None:
        """Block until every member of the communicator has arrived at
        collective #seq, staying responsive to checkpoint intent.

        ``park_check`` is invoked while waiting; it may detour into a
        full checkpoint (and return afterwards).  Arrival is recorded by
        world rank and is idempotent.
        """
        key = (comm_key, seq)
        members = set(member_world_ranks)
        while True:
            self._raise_if_aborted()
            want_park = False
            with self._tb_cv:
                state = self._tb_arrivals.setdefault(
                    key, {"arrived": set(), "committed": False}
                )
                state["arrived"].add(rank)
                if state["committed"] or members.issubset(state["arrived"]):
                    # Commit point: from here, *no* member may park for a
                    # checkpoint before entering the collective — the
                    # two-phase-commit guarantee that makes the critical
                    # section deadlock-free.
                    state["committed"] = True
                    self._tb_cv.notify_all()
                    stale = [
                        k for k in self._tb_arrivals
                        if k[0] == comm_key and k[1] < seq - 2
                    ]
                    for k in stale:
                        del self._tb_arrivals[k]
                    return
                if (
                    self._intent is not None
                    and self._intent.kind == CheckpointKind.IN_SESSION
                    and not self._ckpt_disabled
                ):
                    # Leave the barrier BEFORE parking so partners cannot
                    # observe a full set that includes a parked rank.
                    state["arrived"].discard(rank)
                    want_park = True
                else:
                    # Arrivals and intent arming both notify this CV, so
                    # the timeout is only a safety net.
                    self._tb_cv.notify_all()
                    self._tb_cv.wait(timeout=0.05)
            if want_park:
                park_check()

    def cancel_pending(self, reason: str) -> None:
        """Fail any armed-but-unstarted checkpoint (e.g. the job finished
        before any rank reached a safe point) and any unfired trigger."""
        with self._lock:
            tickets = [t["ticket"] for t in self._pending_triggers]
            self._pending_triggers.clear()
            if self._intent is not None:
                tickets.append(self._intent)
                self._intent = None
            for t in tickets:
                if t.error is None:
                    t.error = CheckpointError(
                        f"checkpoint cancelled: {reason}"
                    )
                t._done.set()

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def abort(self, exc: Optional[BaseException] = None) -> None:
        with self._lock:
            self._aborted = exc or CheckpointError("job aborted")
            tickets = [tr["ticket"] for tr in self._pending_triggers]
            self._pending_triggers.clear()
            if self._intent is not None:
                tickets.append(self._intent)
            for t in tickets:
                if t.error is None:
                    t.error = self._aborted
                t._done.set()
            self._fin_cv.notify_all()  # shares self._lock
        for b in (
            self._bar_quiesce, self._bar_drained,
            self._bar_saved, self._bar_resumed,
        ):
            b.abort()
        with self._tb_cv:
            self._tb_cv.notify_all()

    def _raise_if_aborted(self) -> None:
        if self._aborted is not None:
            raise self._aborted
