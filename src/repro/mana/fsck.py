"""``repro fsck``: crash-recovery repair for a checkpoint directory.

A checkpoint base directory shut down *dirty* when a writer died — real
``kill -9`` or a simulated :class:`repro.util.errors.InjectedCrash` —
between beginning a store mutation and retiring its journal record
(:mod:`repro.mana.journal`).  What such a death can leave behind is
exactly enumerable:

* **pending journal records** — the mutation's intent, still on disk;
* **stray ``*.tmp`` files** — a write-tmp that never reached its
  ``rename``/``link`` publish (unique per-writer names mean no later
  writer ever reuses them);
* **manifest-less generation directories** — rank images whose
  generation never committed (the manifest is always written last);
* **orphan chunks** — content-addressed store entries referenced by no
  surviving image (harmless until reclaimed);
* **corrupt chunks** — a torn chunk write that somehow reached a final
  path, or plain bit rot.

:func:`fsck` repairs all of it with one pass, driven by the journal:

1. *Replay the journal.*  For each pending ``image-save`` /
   ``manifest-commit`` / ``drain-finalize`` record: if the named
   generation has a manifest at its final path the mutation completed —
   roll **forward** by retiring the record; otherwise the generation is
   invisible by construction — roll **back** by deleting its directory.
   Pending ``prune`` records name their doomed generations, and
   deletion is re-runnable, so fsck finishes them; ``gc`` is idempotent
   and is redone by the orphan sweep below.  Torn records (``op="?"``)
   are simply retired.
2. *Sweep temp files* under the base, store, and generation
   directories.  Unlike the conservative store-open sweep
   (:meth:`repro.mana.chunkstore.ChunkStore.sweep_stray_tmp`, which
   leaves live writers' temps alone), fsck removes **all** of them —
   it must only run while no writer is active.
3. *Deep-verify referenced chunks* (decompress + sha256).  A
   hash-mismatched chunk is moved to ``<base>/quarantine/`` — kept for
   forensics, out of the store so the generations referencing it report
   a clean "chunk missing" instead of tripping on it at restart time.
4. *Remove orphan chunks* (reference scan over the surviving images).
5. *Report* which generations are restorable and why the rest are not.

fsck is idempotent: running it twice returns a second report with
nothing to do.  :func:`auto_repair` is the supervised-restart hook —
it answers "was the shutdown dirty?" cheaply and runs the full repair
only if so.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mana import checkpoint as ckpt
from repro.mana import storeio
from repro.mana.chunkstore import CHUNK_SUFFIX, store_for
from repro.mana.journal import Journal
from repro.util.errors import IntegrityError

#: Journal ops whose pending record names a possibly-uncommitted
#: generation (roll forward iff its manifest is on disk).
_GENERATION_OPS = ("image-save", "manifest-commit", "drain-finalize")


@dataclass
class FsckReport:
    """What one :func:`fsck` pass found and (in repair mode) fixed."""

    base_dir: str
    #: True when there was anything to repair (pending records, stray
    #: temp files, quarantined or orphaned chunks).
    dirty: bool = False
    #: True when this pass ran in repair mode (check-only passes leave
    #: the directory untouched and report what a repair would do).
    repaired: bool = False
    #: Pending journal records found (op + fields), oldest first.
    pending_records: List[Dict] = field(default_factory=list)
    #: Generations rolled back (manifest never committed), ascending.
    rolled_back_generations: List[int] = field(default_factory=list)
    #: Generations whose records were retired because their manifest
    #: was already durable (the mutation completed), ascending.
    rolled_forward_generations: List[int] = field(default_factory=list)
    #: Generations whose interrupted prune was finished, ascending.
    finished_prunes: List[int] = field(default_factory=list)
    #: Stray ``*.tmp`` files removed (store + generation dirs).
    stray_tmp_removed: int = 0
    #: Digests moved to ``<base>/quarantine/`` (hash mismatch).
    quarantined_chunks: List[str] = field(default_factory=list)
    #: Referenced digests that are simply gone (nothing to quarantine).
    missing_chunks: List[str] = field(default_factory=list)
    #: Unreferenced chunks deleted, and their compressed bytes.
    orphan_chunks_removed: int = 0
    orphan_bytes_reclaimed: int = 0
    #: Post-repair restorability verdicts.
    restorable_generations: List[int] = field(default_factory=list)
    #: generation -> human-readable problems, for every generation
    #: present but not restorable.
    skipped_generations: Dict[int, List[str]] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line human summary (CLI output)."""
        if not self.dirty:
            return (
                f"{self.base_dir}: clean; restorable generations: "
                f"{self.restorable_generations}"
            )
        bits = []
        if self.rolled_back_generations:
            bits.append(f"rolled back {self.rolled_back_generations}")
        if self.rolled_forward_generations:
            bits.append(f"rolled forward {self.rolled_forward_generations}")
        if self.finished_prunes:
            bits.append(f"finished prune of {self.finished_prunes}")
        if self.stray_tmp_removed:
            bits.append(f"removed {self.stray_tmp_removed} stray tmp")
        if self.quarantined_chunks:
            bits.append(f"quarantined {len(self.quarantined_chunks)} chunk(s)")
        if self.missing_chunks:
            bits.append(f"{len(self.missing_chunks)} chunk(s) missing")
        if self.orphan_chunks_removed:
            bits.append(
                f"reclaimed {self.orphan_chunks_removed} orphan chunk(s) "
                f"({self.orphan_bytes_reclaimed} bytes)"
            )
        what = "dirty shutdown repaired" if self.repaired else "dirty"
        return (
            f"{self.base_dir}: {what} "
            f"({'; '.join(bits) or 'journal replay only'}); "
            f"restorable generations: {self.restorable_generations}"
        )


def _sweep_all_tmp(base_dir: str) -> int:
    """Remove every ``*.tmp`` under the base, store, journal, and
    generation directories — unconditional, unlike the store-open
    sweep, because fsck runs with no writer active (a simulated
    in-process crash leaves temps owned by *our* pid, which the
    liveness-checking sweep would conservatively keep)."""
    removed = 0
    dirs = [base_dir, os.path.join(base_dir, ckpt.STORE_DIRNAME)]
    for g in ckpt.latest_generations(base_dir):
        dirs.append(ckpt.generation_dir(base_dir, g))
    for d in dirs:
        try:
            names = sorted(os.listdir(d))
        except (FileNotFoundError, NotADirectoryError):
            continue
        for name in names:
            if not name.endswith(storeio.TMP_SUFFIX):
                continue
            try:
                os.remove(os.path.join(d, name))
                removed += 1
            except OSError:
                continue
    return removed


def _has_stray_tmp(base_dir: str) -> bool:
    dirs = [base_dir, os.path.join(base_dir, ckpt.STORE_DIRNAME)]
    for g in ckpt.latest_generations(base_dir):
        dirs.append(ckpt.generation_dir(base_dir, g))
    for d in dirs:
        try:
            names = os.listdir(d)
        except (FileNotFoundError, NotADirectoryError):
            continue
        if any(n.endswith(storeio.TMP_SUFFIX) for n in names):
            return True
    return False


def _quarantine_chunk(base_dir: str, digest: str) -> None:
    """Move a corrupt chunk out of the store, keeping its bytes for
    forensics.  After the move the referencing generations report a
    clean 'chunk missing' instead of a checksum error."""
    qdir = os.path.join(base_dir, ckpt.QUARANTINE_DIRNAME)
    os.makedirs(qdir, exist_ok=True)
    store = store_for(base_dir)
    try:
        os.replace(
            store.chunk_path(digest), os.path.join(qdir, digest + CHUNK_SUFFIX)
        )
    except OSError:
        pass


def fsck(base_dir: str, repair: bool = True) -> FsckReport:
    """Check (and with ``repair``, fix) one checkpoint base directory.

    With ``repair=False`` nothing is mutated: the report describes what
    a repair pass *would* do (journal records stay pending, temps stay,
    corrupt chunks are reported but not quarantined).

    Must not run concurrently with an active writer on the same
    directory — it sweeps temp files unconditionally.
    """
    report = FsckReport(base_dir=base_dir, repaired=repair)
    if not os.path.isdir(base_dir):
        return report
    journal = Journal(base_dir)
    pinned = ckpt.pinned_generations(base_dir)

    # 1. Replay the journal --------------------------------------------
    pending = journal.pending()
    report.pending_records = [
        {k: v for k, v in rec.items() if k != "_token"} for rec in pending
    ]
    rolled_back: List[int] = []
    rolled_forward: List[int] = []
    finished: List[int] = []
    if repair:
        for rec in pending:
            op = rec.get("op")
            if op in _GENERATION_OPS:
                gen = rec.get("generation")
                if isinstance(gen, int) and gen not in pinned:
                    manifest = os.path.join(
                        ckpt.generation_dir(base_dir, gen), ckpt.MANIFEST_NAME
                    )
                    if os.path.exists(manifest):
                        if gen not in rolled_forward:
                            rolled_forward.append(gen)
                    else:
                        if gen not in rolled_back:
                            rolled_back.append(gen)
                        ckpt.remove_generation_dir(base_dir, gen)
            elif op == "prune":
                for gen in rec.get("generations", []) or []:
                    if isinstance(gen, int) and gen not in pinned:
                        ckpt.remove_generation_dir(base_dir, gen)
                        if gen not in finished:
                            finished.append(gen)
            # "gc", torn ("?"), and unknown ops: idempotent or
            # meaningless — the orphan sweep below redoes any GC.
            journal.retire(rec["_token"])
        ckpt.invalidate_checkpoint_caches(base_dir)
        # Manifest-less generation directories with no pending record
        # are also rollback targets: a writer can die in the window
        # between retiring its last image-save record and beginning the
        # manifest commit (or before its first journal write reached
        # disk).  With no writer active — fsck's precondition — a
        # generation without its commit marker is garbage by definition.
        for gen in ckpt.latest_generations(base_dir):
            if gen in pinned or gen in rolled_back:
                continue
            manifest = os.path.join(
                ckpt.generation_dir(base_dir, gen), ckpt.MANIFEST_NAME
            )
            if not os.path.exists(manifest):
                rolled_back.append(gen)
                ckpt.remove_generation_dir(base_dir, gen)
        ckpt.invalidate_checkpoint_caches(base_dir)
    report.rolled_back_generations = sorted(rolled_back)
    report.rolled_forward_generations = sorted(rolled_forward)
    report.finished_prunes = sorted(finished)

    # 2. Temp-file sweep -----------------------------------------------
    if repair:
        report.stray_tmp_removed = _sweep_all_tmp(base_dir)
    else:
        report.stray_tmp_removed = 0
        report.dirty = report.dirty or _has_stray_tmp(base_dir)

    # 3. Deep-verify referenced chunks, quarantine mismatches ----------
    store = store_for(base_dir)
    referenced = ckpt.referenced_chunks(base_dir)
    for digest in sorted(referenced):
        if not store.contains(digest):
            report.missing_chunks.append(digest)
            continue
        try:
            store.get(digest, context="fsck")
        except IntegrityError:
            report.quarantined_chunks.append(digest)
            if repair:
                _quarantine_chunk(base_dir, digest)
            continue

    # 4. Orphan-chunk removal ------------------------------------------
    if repair:
        removed, reclaimed = store.gc(referenced)
        report.orphan_chunks_removed = removed
        report.orphan_bytes_reclaimed = reclaimed
    else:
        orphans = store.digests() - referenced - store.pinned()
        report.orphan_chunks_removed = len(orphans)

    # 5. Restorability verdicts ----------------------------------------
    if repair:
        ckpt.invalidate_checkpoint_caches(base_dir)
    for gen in ckpt.latest_generations(base_dir):
        problems = ckpt.validate_generation(base_dir, gen)
        if problems:
            report.skipped_generations[gen] = problems
        else:
            report.restorable_generations.append(gen)

    report.dirty = bool(
        report.dirty
        or report.pending_records
        or report.rolled_back_generations
        or report.finished_prunes
        or report.stray_tmp_removed
        or report.quarantined_chunks
        or report.orphan_chunks_removed
    )
    return report


def auto_repair(base_dir: str) -> Optional[FsckReport]:
    """The supervised-restart hook: repair only if the shutdown was
    dirty.

    Cheap dirtiness probe first — pending journal records, or stray
    temp files anywhere in the layout.  A clean directory returns
    ``None`` without mutating anything (and without the cost of a deep
    chunk verification), so a supervisor restarting after an ordinary
    rank failure sees no fsck event in its trace.
    """
    if not os.path.isdir(base_dir):
        return None
    if not Journal(base_dir).pending() and not _has_stray_tmp(base_dir):
        return None
    return fsck(base_dir, repair=True)
