"""Reconstruction records — the MANA-internal structure behind each vid.

Section 4.2: "Each virtual id in the new design is represented by a
structure that corresponds to an MPI communicator, group, request,
operation, or datatype.  This structure contains additional MANA-specific
information associated with that MPI object ... used to correctly save
the state of MPI objects created by the lower-half MPI library."

Records hold everything needed to re-create a *semantically equivalent*
MPI object in a fresh lower half.  They are implementation-oblivious by
construction: world-rank memberships, datatype descriptor trees, registry
names — never physical handles of any particular implementation.

All records are picklable; they are saved verbatim inside the upper-half
checkpoint image ("MANA does not require a special data structure in the
checkpoint image to identify these structures" — they are just part of
upper-half memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.mpi.datatypes import TypeDescriptor
from repro.mpi.group import ggid_of
from repro.mpi.objects import Status


@dataclass
class ConstantRecord:
    """A predefined MPI object (MPI_COMM_WORLD, MPI_INT, MPI_SUM, ...).

    Reconstruction = asking the new lower half for the constant again.
    Stable across restarts and across *implementations* — the key to the
    cross-implementation restart experiment.
    """

    name: str


@dataclass
class CommRecord:
    """A user-created communicator.

    ``world_ranks`` is the membership in MPI_COMM_WORLD rank order —
    sufficient to reconstruct the communicator via MPI_Comm_split on
    MPI_COMM_WORLD at restart (the standard-calls-only replay of §5).

    ``ggid`` is the paper's global group id; ``dup_seq`` disambiguates
    communicators with identical membership (e.g. MPI_Comm_dup results):
    because communicator creation is collective, every member rank
    observes the same creation order and thus computes the same dup_seq.

    ``cart`` stores cartesian topology so MANA can answer topology
    queries from its own records (and restore topology after restart,
    where the comm is rebuilt by comm_split and would otherwise lose it).

    ``sent_to``/``received_from`` are the per-peer message counters the
    drain protocol exchanges at checkpoint time — an example of the
    "additional MANA-internal information" §4.2 says lives in the
    virtual-id structure.
    """

    world_ranks: Tuple[int, ...]
    ggid: Optional[int]
    dup_seq: int
    name: str = ""
    cart: Optional[Tuple[Tuple[int, ...], Tuple[bool, ...]]] = None
    # drain bookkeeping: world rank -> wrapper-level user message count
    sent_to: Dict[int, int] = field(default_factory=dict)
    received_from: Dict[int, int] = field(default_factory=dict)
    # wrapper-level collective sequence number (trivial-barrier key)
    coll_seq: int = 0
    # Cached communicator attributes (MPI_Comm_set_attr): because they
    # live in the MANA record, they ride inside the checkpoint image and
    # survive restarts without any replay — another use of §4.2's
    # "additional MANA-specific information".
    attributes: Dict[int, object] = field(default_factory=dict)

    def key(self) -> Tuple[int, int]:
        """Globally agreed identity of this communicator."""
        g = self.ggid if self.ggid is not None else ggid_of(self.world_ranks)
        return (g, self.dup_seq)


@dataclass
class GroupRecord:
    """A user-created group: world-rank membership in group-rank order."""

    world_ranks: Tuple[int, ...]


@dataclass
class DatatypeRecord:
    """A user-created datatype.

    ``descriptor`` is the full structural tree, obtained at commit time
    by decoding the lower-half object with MPI_Type_get_envelope /
    MPI_Type_get_contents (paper §5, category 2) — NOT by trusting
    MANA's own bookkeeping, so the record provably contains only what
    any standards-compliant implementation can report.
    """

    descriptor: TypeDescriptor
    committed: bool = False


@dataclass
class OpRecord:
    """A reduction op: a predefined name, or a registered user function."""

    predefined_name: Optional[str] = None
    registry_name: Optional[str] = None
    commute: bool = True

    def __post_init__(self):
        if self.predefined_name is None and self.registry_name is None:
            raise ValueError(
                "user MPI_Op functions must be registered with "
                "repro.util.registry.user_op before use, or they cannot "
                "be reconstructed at restart"
            )


@dataclass
class RequestRecord:
    """A nonblocking operation.

    Only *pending receives* survive a checkpoint (the eager fabric
    completes sends at post time, and MANA forces completion of anything
    completable during the drain).  ``buf`` is the application's receive
    buffer: because the image is one pickle, the array here and the same
    array inside the application state remain one object after restore.
    """

    kind: str                      # "send" | "recv"
    comm_vid: int
    peer: int                      # comm rank or ANY_SOURCE
    tag: int
    count: int
    datatype_vid: int
    buf: Optional[np.ndarray] = None
    completed: bool = False
    status: Optional[Status] = None
    # Persistent requests (MPI_Send_init/Recv_init): the record outlives
    # completion; ``active`` marks an outstanding started cycle.  At
    # restart, persistent requests are re-created with *_init and, if a
    # cycle was outstanding, re-started.
    persistent: bool = False
    active: bool = False


#: map record class -> HandleKind string (import-cycle-free)
RECORD_KINDS = {
    "CommRecord": "comm",
    "GroupRecord": "group",
    "DatatypeRecord": "datatype",
    "OpRecord": "op",
    "RequestRecord": "request",
    "ConstantRecord": "constant",
}
