"""Content-addressed chunk store for format-5 checkpoint images.

The per-rank pickle payload is split into **content-defined chunks**: a
gear-style rolling hash slides over the bytes and declares a boundary
wherever the hash's low bits hit a fixed pattern.  Boundaries therefore
move *with the content* — inserting or resizing a region early in the
pickle shifts at most the chunks it touches, while every later chunk
keeps its bytes and hence its sha256.  That is what makes generation
N+1 cheap: unchanged application state re-produces the same chunk
digests, and the store already has them.

Each chunk is stored once per job under ``<ckpt_base>/chunks/`` in a
file named by the sha256 of its *uncompressed* bytes, compressed with
zlib (level configurable).  Writes are atomic (unique temp name +
``os.replace``), so two ranks racing to store the same chunk both win:
the content under a digest is immutable by construction.

Integrity is per-chunk: :meth:`ChunkStore.get` decompresses and
re-hashes, so a corrupt chunk names itself (digest + context) instead of
forcing a full-payload re-hash at restart.  :meth:`ChunkStore.verify`
memoizes successful checks against the chunk file's (size, mtime), so
repeated generation validation does not re-read healthy chunks.

Garbage collection is reference-based: :func:`repro.mana.checkpoint.
gc_chunks` scans the refs of every remaining image header and calls
:meth:`ChunkStore.gc` with the union.
"""

from __future__ import annotations

import hashlib
import os
import sys
import threading
import warnings
import zlib
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.mana import storeio
from repro.util.errors import IntegrityError

try:  # numpy vectorizes the rolling hash; fall back to pure python
    import numpy as _np
except Exception:  # pragma: no cover - numpy is a hard dep in practice
    _np = None

#: Chunking parameters (format-5 header records them for forensics).
CHUNK_MIN = 2048
CHUNK_MAX = 64 * 1024
#: Boundary when (hash & CHUNK_MASK) == CHUNK_MASK: 13 bits -> ~8 KiB
#: average chunk.
CHUNK_MASK = 0x1FFF

#: Rolling-hash window: the gear hash's state is a weighted sum of the
#: last ``_WINDOW`` bytes (weights 2^0..2^(W-1)); older bytes shift out.
_WINDOW = 32

STORE_DIRNAME = "chunks"
CHUNK_SUFFIX = ".z"


def _gear_table():
    """256 deterministic 64-bit mixing constants.

    Derived from sha256, never a host RNG, so chunk boundaries are
    bit-identical across processes, machines, and library versions.
    """
    vals = [
        int.from_bytes(
            hashlib.sha256(b"repro-gear/" + bytes([i])).digest()[:8], "big"
        )
        for i in range(256)
    ]
    if _np is not None:
        return _np.array(vals, dtype=_np.uint64)
    return vals


_GEAR = _gear_table()

#: Truncated gear table for the vectorized boundary scan.  The boundary
#: test only reads the low 13 bits of the windowed hash, a term
#: ``g << j`` contributes nothing modulo 2**13 once ``j >= 13``, and
#: wrapping addition commutes with truncation — so the whole scan is
#: exact in uint16 over the newest 13 window bytes.
_GEAR16 = (_GEAR & _np.uint64(0xFFFF)).astype(_np.uint16) if _np is not None else None

#: Number of window positions that can influence the low 13 bits.
_EFFECTIVE_WINDOW = 13

if _np is not None:
    #: Low byte of each gear constant — the uint8 prefilter table.
    _GEAR8 = (_GEAR & _np.uint64(0xFF)).astype(_np.uint8)
    #: Pair table: entry ``b0 | b1 << 8`` packs ``g8[b0] | g8[b1] << 8``,
    #: so on a little-endian host one gather over the uint16 view of the
    #: payload yields the g8 values of *two* bytes (viewing the packed
    #: result as uint8 lands them in input order) — half the gather
    #: count of a byte-at-a-time lookup, and the 128 KiB table stays
    #: cache-resident.
    _idx = _np.arange(65536, dtype=_np.uint32)
    _GEAR8_PAIR = (
        _GEAR8[_idx & 0xFF].astype(_np.uint16)
        | (_GEAR8[_idx >> 8].astype(_np.uint16) << _np.uint16(8))
    )
    del _idx
else:  # pragma: no cover - exercised via the pure-python fallback tests
    _GEAR8 = None
    _GEAR8_PAIR = None

_LITTLE_ENDIAN = sys.byteorder == "little"


def _gear8_values(arr):
    """g8 value per payload byte, two bytes per table lookup when the
    host is little-endian (one lookup per byte otherwise)."""
    n = arr.shape[0]
    if _LITTLE_ENDIAN and n >= 2:
        even = n & ~1
        packed = _GEAR8_PAIR[arr[:even].view(_np.uint16)].view(_np.uint8)
        if not (n & 1):
            return packed
        g8 = _np.empty(n, dtype=_np.uint8)
        g8[:even] = packed
        g8[n - 1] = _GEAR8[arr[n - 1]]
        return g8
    return _GEAR8[arr]


def _short_window_boundary(arr, i: int) -> bool:
    """Exact boundary test for a position whose window is still growing
    (i < _EFFECTIVE_WINDOW - 1): fewer than 13 bytes contribute."""
    h = 0
    for j in range(i + 1):
        h += int(_GEAR[int(arr[i - j])]) << j
    return (h & CHUNK_MASK) == CHUNK_MASK


def _boundary_candidates(data: bytes):
    """Positions i where the windowed gear hash over data[i-W+1 .. i]
    matches the boundary pattern.

    With numpy, a two-stage scan (sorted int ndarray result):

    1. **uint8 prefilter** — the low 8 bits of the windowed sum depend
       only on the newest 8 bytes (a term ``g << j`` vanishes mod 2**8
       for ``j >= 8``), so three uint8 log-doubling passes
       (``H_2k(i) = H_k(i) + (H_k(i-k) << k)``) compute them for every
       position at half the memory traffic of a uint16 scan.  The
       boundary pattern requires those bits to be all-ones — a 1/256
       filter.
    2. **exact check at survivors** — the full 13-term uint16 hash is
       gathered only at prefilter hits (~n/256 positions), then tested
       against CHUNK_MASK.

    Without numpy, returns a list from the byte-at-a-time fallback;
    both paths yield identical positions.
    """
    n = len(data)
    if n == 0:
        return []
    if _np is not None:
        arr = _np.frombuffer(data, dtype=_np.uint8)
        g8 = _gear8_values(arr)                   # H_1 mod 2^8
        t = _np.empty_like(g8)
        t[0] = 0
        _np.left_shift(g8[:-1], 1, out=t[1:])
        t += g8                                   # H_2
        h8 = _np.empty_like(g8)
        h8[:2] = 0
        _np.left_shift(t[:-2], 2, out=h8[2:])
        h8 += t                                   # H_4
        t[:4] = 0
        _np.left_shift(h8[:-4], 4, out=t[4:])
        t += h8                                   # H_8 mod 2^8
        cand = _np.flatnonzero(t == _np.uint8(0xFF))
        if cand.size == 0:
            return cand
        short = cand[cand < _EFFECTIVE_WINDOW - 1]
        full = cand[cand >= _EFFECTIVE_WINDOW - 1]
        h16 = _np.zeros(full.shape[0], dtype=_np.uint16)
        for j in range(_EFFECTIVE_WINDOW):
            h16 += _GEAR16[arr[full - j]] << _np.uint16(j)
        mask = _np.uint16(CHUNK_MASK)
        out = full[(h16 & mask) == mask]
        if short.size:
            extra = [
                int(i) for i in short if _short_window_boundary(arr, int(i))
            ]
            if extra:
                out = _np.concatenate(
                    [_np.asarray(extra, dtype=out.dtype), out]
                )
        return out
    # Pure-python fallback: same function, byte at a time.
    out = []
    mask = CHUNK_MASK
    window: List[int] = []
    h = 0
    for i, b in enumerate(data):
        window.append(int(_GEAR[b]))
        if len(window) > _WINDOW:
            window.pop(0)
        h = 0
        for j, gv in enumerate(reversed(window)):
            h = (h + (gv << j)) & 0xFFFFFFFFFFFFFFFF
        if (h & mask) == mask:
            out.append(i)
    return out


def chunk_spans(
    data: bytes,
    min_size: int = CHUNK_MIN,
    max_size: int = CHUNK_MAX,
) -> List[Tuple[int, int]]:
    """Content-defined (start, end) spans covering ``data``.

    Deterministic in the bytes alone.  Boundaries come from the rolling
    hash; ``min_size``/``max_size`` bound the pathological cases (a
    boundary pattern repeating every byte, or never appearing).
    """
    n = len(data)
    if n == 0:
        return []
    if n <= min_size:
        return [(0, n)]
    cands = _boundary_candidates(data)
    vectorized = _np is not None and isinstance(cands, _np.ndarray)
    spans: List[Tuple[int, int]] = []
    start = 0
    import bisect

    while start < n:
        hard_end = min(start + max_size, n)
        lo = start + min_size
        if lo >= n:
            spans.append((start, n))
            break
        # First candidate boundary in [start+min_size, start+max_size).
        if vectorized:
            k = int(_np.searchsorted(cands, lo))
        else:
            k = bisect.bisect_left(cands, lo)
        end = hard_end
        if k < len(cands) and int(cands[k]) < hard_end:
            end = int(cands[k]) + 1  # boundary byte included in the chunk
        spans.append((start, end))
        start = end
    return spans


def digest_spans(view, spans: List[Tuple[int, int]]) -> List[str]:
    """sha256 hexdigests for every (start, end) span of ``view``.

    One tight loop over a single memoryview: the format-5 writer hashes
    all chunk spans in a batch instead of re-slicing inside its store
    loop, and hashlib releases the GIL for buffers over 2 KiB so rank
    threads digest concurrently.
    """
    sha = hashlib.sha256
    return [sha(view[s:e]).hexdigest() for s, e in spans]


class ChunkStore:
    """Per-job content-addressed store of compressed checkpoint chunks."""

    def __init__(self, base_dir: str, compress_level: int = 3):
        self.base_dir = base_dir
        self.compress_level = compress_level
        self._lock = threading.Lock()
        # digest -> (size, mtime_ns) of the chunk file when it last
        # passed a full decompress+hash verification.
        self._verified: Dict[str, Tuple[int, int]] = {}
        # digest -> refcount of in-flight writers (async drains) whose
        # image headers do not exist on disk yet; gc treats these as
        # referenced.
        self._pins: Dict[str, int] = {}

    @property
    def dir(self) -> str:
        return os.path.join(self.base_dir, STORE_DIRNAME)

    def chunk_path(self, digest: str) -> str:
        return os.path.join(self.dir, digest + CHUNK_SUFFIX)

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def put(self, data: bytes) -> Tuple[str, int, bool]:
        """Store one chunk; returns (digest, bytes_written, reused).

        ``bytes_written`` is the compressed on-disk size when the chunk
        was new, 0 when the store already had it (dedup hit).
        """
        digest = hashlib.sha256(data).hexdigest()
        written, reused = self.put_known(digest, data)
        return digest, written, reused

    def put_known(self, digest: str, data) -> Tuple[int, bool]:
        """Store a chunk whose sha256 the caller already computed (the
        format-5 writer batch-hashes all spans up front); returns
        (bytes_written, reused)."""
        path = self.chunk_path(digest)
        if os.path.exists(path):
            return 0, True
        os.makedirs(self.dir, exist_ok=True)
        comp = zlib.compress(bytes(data), self.compress_level)
        # Unique temp name, then an atomic create-if-absent link: when
        # concurrent rank writers race on the same digest, exactly one
        # wins the link and charges bytes_written — the losers report a
        # dedup hit.  (os.replace would let both "succeed" and the
        # double-counted bytes would make checkpoint durations — hence
        # recovery traces — scheduling-dependent.)
        tmp = storeio.tmp_name(path)
        storeio.write_file(tmp, comp, site="chunk.tmp")
        try:
            storeio.link(tmp, path, site="chunk")
        except FileExistsError:
            return 0, True
        finally:
            storeio.unlink(tmp, site="chunk.tmp", missing_ok=True)
        with self._lock:
            st = os.stat(path)
            self._verified[digest] = (st.st_size, st.st_mtime_ns)
        return len(comp), False

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def get(self, digest: str, context: str = "") -> bytes:
        """Read, decompress, and integrity-check one chunk."""
        path = self.chunk_path(digest)
        where = f"{context}: " if context else ""
        try:
            with open(path, "rb") as f:
                comp = f.read()
        except FileNotFoundError:
            raise IntegrityError(
                f"{where}chunk {digest[:12]}… missing from store "
                f"{self.dir}"
            ) from None
        try:
            data = zlib.decompress(comp)
        except zlib.error as exc:
            raise IntegrityError(
                f"{where}chunk {digest[:12]}… corrupt "
                f"(decompression failed: {exc})"
            ) from None
        actual = hashlib.sha256(data).hexdigest()
        if actual != digest:
            raise IntegrityError(
                f"{where}chunk {digest[:12]}… checksum mismatch "
                f"(bit rot or torn write): sha256 {actual[:12]}…"
            )
        with self._lock:
            st = os.stat(path)
            self._verified[digest] = (st.st_size, st.st_mtime_ns)
        return data

    def verify(self, digest: str, context: str = "") -> None:
        """Like :meth:`get` but memoized: a chunk whose file stat is
        unchanged since its last successful verification is trusted."""
        path = self.chunk_path(digest)
        try:
            st = os.stat(path)
        except FileNotFoundError:
            raise IntegrityError(
                f"{context + ': ' if context else ''}chunk "
                f"{digest[:12]}… missing from store {self.dir}"
            ) from None
        with self._lock:
            if self._verified.get(digest) == (st.st_size, st.st_mtime_ns):
                return
        self.get(digest, context)

    def contains(self, digest: str) -> bool:
        return os.path.exists(self.chunk_path(digest))

    # ------------------------------------------------------------------
    # accounting / garbage collection
    # ------------------------------------------------------------------
    def digests(self) -> Set[str]:
        """Digests of every chunk currently on disk."""
        if not os.path.isdir(self.dir):
            return set()
        out = set()
        for name in os.listdir(self.dir):
            if name.endswith(CHUNK_SUFFIX) and not name.endswith(".tmp"):
                out.add(name[: -len(CHUNK_SUFFIX)])
        return out

    def stored_bytes(self) -> int:
        if not os.path.isdir(self.dir):
            return 0
        total = 0
        with os.scandir(self.dir) as it:
            for e in it:
                if e.name.endswith(CHUNK_SUFFIX):
                    total += e.stat().st_size
        return total

    # ------------------------------------------------------------------
    # pinning (async drains)
    # ------------------------------------------------------------------
    def pin(self, digests: Iterable[str]) -> None:
        """Refcount-protect chunks against :meth:`gc` while an async
        drain holds them — the window between a chunk landing in the
        store and the image header that references it reaching disk,
        during which a reference scan cannot see them."""
        with self._lock:
            for d in digests:
                self._pins[d] = self._pins.get(d, 0) + 1

    def unpin(self, digests: Iterable[str]) -> None:
        with self._lock:
            for d in digests:
                c = self._pins.get(d, 0) - 1
                if c <= 0:
                    self._pins.pop(d, None)
                else:
                    self._pins[d] = c

    def pinned(self) -> Set[str]:
        with self._lock:
            return set(self._pins)

    def gc(self, referenced: Iterable[str]) -> Tuple[int, int]:
        """Delete chunks not in ``referenced``; returns (removed count,
        reclaimed compressed bytes).  Pinned chunks (in-flight async
        drains) are always kept."""
        keep = set(referenced) | self.pinned()
        removed = 0
        reclaimed = 0
        for digest in sorted(self.digests() - keep):
            path = self.chunk_path(digest)
            try:
                size = os.path.getsize(path)
                storeio.unlink(path, site="chunk", missing_ok=False)
                reclaimed += size
                removed += 1
            except OSError:
                continue
            with self._lock:
                self._verified.pop(digest, None)
        return removed, reclaimed

    # ------------------------------------------------------------------
    # crash-recovery hygiene
    # ------------------------------------------------------------------
    def sweep_stray_tmp(self, warn: bool = True) -> int:
        """Remove leftover ``*.tmp`` files under the store dir.

        A crash between writing a chunk's temp file and publishing (or
        unlinking) it strands the temp file forever — its unique name
        means no later writer ever reuses it.  Swept at store open
        (:func:`store_for`) and by fsck.  Temp files whose embedded
        writer pid is still alive are left alone (a concurrent job may
        be mid-publish); legacy names with no parseable owner are
        treated as dead.  Returns the number removed."""
        if not os.path.isdir(self.dir):
            return 0
        removed = 0
        for name in sorted(os.listdir(self.dir)):
            if not name.endswith(".tmp"):
                continue
            if storeio.tmp_owner_alive(name):
                continue
            try:
                os.remove(os.path.join(self.dir, name))
                removed += 1
            except OSError:
                continue
        if removed and warn:
            warnings.warn(
                f"chunk store {self.dir}: removed {removed} stray .tmp "
                f"file(s) left by a dead writer (dirty shutdown); run "
                f"`python -m repro fsck` for a full repair",
                stacklevel=2,
            )
        return removed


# ----------------------------------------------------------------------
# shared per-directory instances
# ----------------------------------------------------------------------
_STORES: Dict[str, ChunkStore] = {}
_STORES_LOCK = threading.Lock()


def store_for(base_dir: str,
              compress_level: Optional[int] = None) -> ChunkStore:
    """The (process-wide) store for a checkpoint base directory.

    Sharing one instance per directory lets the verification memo span
    the coordinator, the restart path, and generation validation.
    """
    key = os.path.abspath(base_dir)
    with _STORES_LOCK:
        store = _STORES.get(key)
        created = store is None
        if created:
            store = ChunkStore(base_dir)
            _STORES[key] = store
        if compress_level is not None:
            store.compress_level = compress_level
    if created:
        # Store open: clear temp files stranded by a dead writer (a
        # crash between write-tmp and publish); live writers' temps are
        # left untouched.
        store.sweep_stray_tmp()
    return store
