"""MPI global constants under MANA (paper Section 4.3).

The problem: ``MPI_COMM_WORLD`` and friends are whatever the target
``mpi.h`` says they are —

* MPICH family: unique compile-time integers, identical in upper and
  lower halves, stable across sessions;
* Open MPI: macros expanding to *function calls* returning pointers,
  valid only after library startup, different between a dynamically
  linked upper half and a statically linked lower half, and different
  before checkpoint vs after restart;
* ExaMPI: smart shared pointers with reinterpret casts, resolved
  *lazily* on first use, with aliases (MPI_INT8_T and MPI_CHAR share a
  pointer).

MANA's solution, reproduced here: constants are re-defined as lookups
into MANA's own table.  The first time the application touches a
constant, the wrapper resolves it in the *current* lower half (which for
ExaMPI triggers the lazy creation) and binds it to a virtual id whose
index is derived from the constant's *name* — stable across sessions,
restarts, and MPI implementations.  After a restart, replay simply
re-asks the new lower half for each name.

This module hosts the name → object-kind classification the wrapper and
replay layers share.
"""

from __future__ import annotations

from typing import Optional

from repro.mpi import constants as C
from repro.mpi.api import HandleKind

#: Names whose records must be CommRecords (they carry drain counters
#: and collective sequence numbers like any other communicator).
COMM_CONSTANTS = frozenset(C.PREDEFINED_COMMS)


def constant_kind(name: str) -> Optional[str]:
    """The HandleKind of a predefined-constant name, or None."""
    if name in C.PREDEFINED_COMMS:
        return HandleKind.COMM
    if name in C.PREDEFINED_GROUPS:
        return HandleKind.GROUP
    if name in C.PREDEFINED_DATATYPES:
        return HandleKind.DATATYPE
    if name in C.PREDEFINED_OPS:
        return HandleKind.OP
    return None


def is_lazy_impl(impl_name: str) -> bool:
    """Implementations whose constants materialize on first touch."""
    return impl_name == "exampi"


def all_constant_names() -> tuple:
    return C.ALL_CONSTANT_NAMES
