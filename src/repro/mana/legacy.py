"""The OLD virtual-id design — the ablation baseline (paper Section 4.1).

This reproduces the pre-2023 production MANA scheme and all four of the
drawbacks the paper enumerates:

1. **int-only virtual ids.**  Virtual ids are plain 32-bit integers.
   When the target implementation declares 64-bit pointer handle types,
   the design cannot represent them: :meth:`embed` raises
   :class:`IncompatibleHandleError`.  (This is the concrete reason the
   original MANA could not run Open MPI or ExaMPI applications.)
2. **String-keyed per-type maps.**  Each MPI object kind has its own
   singleton map, selected via a macro-encoded *string* key
   (``"comm:<id>"`` etc.), so every translation performs string
   construction + hashing — the overhead the new design's binary tags
   eliminate (measured in the lookup ablation benchmark).
3. **Metadata in separate maps.**  The record describing an object and
   any MANA bookkeeping live in maps *separate* from the id translation
   map, so retrieving both costs multiple lookups.
4. **O(n) reverse translation.**  Physical-to-virtual translation scans
   all values.

The class is duck-type compatible with
:class:`repro.mana.virtid.VirtualIdTable` so the wrapper layer runs
unmodified against either design.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Optional

from repro.mana.records import CommRecord
from repro.mana.virtid import VidEntry
from repro.mpi.api import HandleKind
from repro.mpi.group import ggid_of
from repro.util.errors import IncompatibleHandleError, InvalidHandleError


class LegacyVirtualIdMaps:
    """Per-type string-keyed maps with int virtual ids (the old design)."""

    design_name = "legacy"

    def __init__(self, handle_bits: int = 32, ggid_policy: str = "eager",
                 clock=None):
        self.handle_bits = handle_bits
        self.ggid_policy = ggid_policy  # accepted for interface parity
        self.clock = clock
        # One singleton map per type, string keyed (drawback 2).
        self._id_maps: Dict[str, Dict[str, Optional[int]]] = {
            k: {} for k in HandleKind.ALL
        }
        # Metadata lives apart from the translation maps (drawback 3).
        self._record_maps: Dict[str, Dict[str, object]] = {
            k: {} for k in HandleKind.ALL
        }
        self._const_maps: Dict[str, Dict[str, str]] = {
            k: {} for k in HandleKind.ALL
        }
        self._constants: Dict[str, int] = {}
        # Disjoint integer ranges per kind (the old MANA's per-type maps
        # never shared callers, so ids never needed to be globally unique;
        # here the scan-all-kinds lookup requires disjointness).
        self._counters = {
            k: itertools.count((i + 1) << 24)
            for i, k in enumerate(HandleKind.ALL)
        }
        self._creation_seq = itertools.count(1)
        self._creation: Dict[str, int] = {}
        self.membership_incarnations: Dict[tuple, int] = {}
        self.lookup_count = 0
        # Wrapper-level attribute keyvals (MPI_Comm_create_keyval):
        # persisted with the table so keyvals held in application state
        # stay valid across cold restarts.
        self.live_keyvals: set = set()
        self.next_keyval: int = 1

    # -- embedding ---------------------------------------------------------
    def embed(self, vid: int) -> int:
        if self.handle_bits != 32:
            # Drawback 1, made concrete: an int virtual id cannot stand in
            # for a 64-bit pointer-typed MPI object.
            raise IncompatibleHandleError(
                "legacy virtual ids are 32-bit ints and conflict with an "
                "MPI implementation whose handle types are 64-bit "
                "pointers (Open MPI / ExaMPI); use the new virtual-id "
                "design"
            )
        return vid

    @staticmethod
    def extract(vhandle: int) -> int:
        return vhandle

    @staticmethod
    def _skey(kind: str, vid: int) -> str:
        # The macro-encoded string key of the old design.
        return f"{kind}:{vid}"

    # -- allocation ----------------------------------------------------------
    def attach(
        self,
        kind: str,
        record,
        phys: Optional[int],
        constant_name: Optional[str] = None,
    ) -> int:
        vid = next(self._counters[kind])
        key = self._skey(kind, vid)
        self._id_maps[kind][key] = phys
        self._record_maps[kind][key] = record
        self._creation[key] = next(self._creation_seq)
        if constant_name is not None:
            self._const_maps[kind][key] = constant_name
            self._constants[constant_name] = vid
        # Eager ggid only (the old design had no policy choice).
        if kind == HandleKind.COMM and isinstance(record, CommRecord):
            if record.ggid is None:
                record.ggid = ggid_of(record.world_ranks)
        return self.embed(vid)

    # -- translation -----------------------------------------------------------
    def lookup(self, vhandle: int, kind: Optional[str] = None) -> VidEntry:
        self.lookup_count += 1
        vid = self.extract(vhandle)
        kinds = [kind] if kind is not None else list(HandleKind.ALL)
        for k in kinds:
            key = self._skey(k, vid)
            if key in self._id_maps[k]:
                # Two more lookups for metadata (drawback 3).
                record = self._record_maps[k][key]
                const = self._const_maps[k].get(key)
                return VidEntry(
                    vid=vid,
                    kind=k,
                    record=record,
                    phys=self._id_maps[k][key],
                    creation_seq=self._creation[key],
                    constant_name=const,
                )
        raise InvalidHandleError(
            f"unknown legacy virtual id {vid} (kind={kind})"
        )

    def phys(self, vhandle: int, kind: Optional[str] = None) -> int:
        entry = self.lookup(vhandle, kind)
        if entry.phys is None:
            raise InvalidHandleError(
                f"legacy vid {entry.vid} has no physical binding"
            )
        return entry.phys

    def set_phys(self, vhandle: int, phys: Optional[int]) -> None:
        vid = self.extract(vhandle)
        for k in HandleKind.ALL:
            key = self._skey(k, vid)
            if key in self._id_maps[k]:
                self._id_maps[k][key] = phys
                return
        raise InvalidHandleError(f"unknown legacy virtual id {vid}")

    def vid_of_phys(self, kind: str, phys: int) -> Optional[int]:
        """O(n) scan — drawback 4, verbatim."""
        self.lookup_count += 1
        for key, p in self._id_maps[kind].items():
            if p == phys:
                return self.embed(int(key.split(":", 1)[1]))
        return None

    def constant_vid(self, name: str) -> Optional[int]:
        vid = self._constants.get(name)
        return None if vid is None else self.embed(vid)

    def remove(self, vhandle: int) -> None:
        vid = self.extract(vhandle)
        for k in HandleKind.ALL:
            key = self._skey(k, vid)
            if key in self._id_maps[k]:
                del self._id_maps[k][key]
                self._record_maps[k].pop(key, None)
                const = self._const_maps[k].pop(key, None)
                if const is not None:
                    self._constants.pop(const, None)
                self._creation.pop(key, None)
                return
        raise InvalidHandleError(f"double free of legacy vid {vid}")

    # -- iteration / checkpoint -----------------------------------------------
    def entries(self, kind: Optional[str] = None) -> Iterator[VidEntry]:
        items = []
        kinds = [kind] if kind is not None else list(HandleKind.ALL)
        for k in kinds:
            for key in self._id_maps[k]:
                vid = int(key.split(":", 1)[1])
                items.append(self.lookup(vid, k))
        items.sort(key=lambda e: e.creation_seq)
        return iter(items)

    def finalize_ggids(self) -> int:
        return 0  # legacy design is always eager

    def rebuild_reverse(self) -> None:
        pass  # no reverse map to rebuild (reverse is a scan)

    def __len__(self) -> int:
        return sum(len(m) for m in self._id_maps.values())

    def __getstate__(self):
        state = self.__dict__.copy()
        # Physical ids die with the lower half.
        state["_id_maps"] = {
            k: {key: None for key in m} for k, m in self._id_maps.items()
        }
        state["_counters"] = {
            k: next(c) for k, c in self._counters.items()
        }
        state["_creation_seq"] = next(self._creation_seq)
        state["clock"] = None
        # Volatile instrumentation stays out of the image (its value is
        # scheduling-dependent; see VirtualIdTable.__getstate__).
        state["lookup_count"] = 0
        return state

    def __setstate__(self, state):
        counters = state.pop("_counters")
        seq = state.pop("_creation_seq")
        self.__dict__.update(state)
        self._counters = {
            k: itertools.count(v) for k, v in counters.items()
        }
        self._creation_seq = itertools.count(seq)
