"""Checkpoint-time quiesce and point-to-point drain (paper Section 5).

MANA cannot touch the network below MPI, so the drain uses only the
paper's category-1 functions: ``MPI_Iprobe`` to detect pending messages,
``MPI_Recv`` to pull them out, ``MPI_Test`` to complete pending
nonblocking receives, plus ``MPI_Alltoall`` to exchange send counts.

Protocol (all ranks are parked at safe points; no new user sends can be
posted):

1. finalize any deferred communicator ggids (lazy/hybrid policy) and
   decode any not-yet-decoded datatypes while the lower half is alive;
2. complete every pending nonblocking receive whose message has already
   arrived (``MPI_Test``);
3. exchange cumulative per-destination send counts with ``MPI_Alltoall``
   on MPI_COMM_WORLD: afterwards each rank knows exactly how many user
   messages were ever sent to it by each peer;
4. while any peer's received-count lags its sent-count: ``MPI_Test`` the
   pending receives again, then ``MPI_Iprobe``/``MPI_Recv`` each live
   communicator and stash the raw bytes in the drain buffer;
5. when all counters match, the network holds no user point-to-point
   traffic — checkpointing the upper half alone is now sound.

Messages pulled in step 4 are replayed transparently: the receive-side
wrappers consult the drain buffer before the (possibly brand-new) lower
half, preserving MPI's non-overtaking order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.mana.records import CommRecord, RequestRecord
from repro.mpi import constants as C
from repro.mpi.api import HandleKind
from repro.mpi.objects import Status
from repro.util.errors import CheckpointError


@dataclass
class DrainedMessage:
    """One user message pulled from the network at checkpoint time."""

    comm_vid: int      # virtual id of the communicator (stable forever)
    src_world: int     # world rank of the sender
    src_comm_rank: int
    tag: int
    payload: bytes

    @property
    def nbytes(self) -> int:
        return len(self.payload)


class DrainBuffer:
    """FIFO of drained messages, matched like the fabric matches.

    Part of the upper-half state: pickled into the checkpoint image and
    consumed by post-restart receives.
    """

    def __init__(self) -> None:
        self._messages: List[DrainedMessage] = []

    def add(self, msg: DrainedMessage) -> None:
        self._messages.append(msg)

    def match(
        self, comm_vid: int, src_world: int, tag: int, *, remove: bool = True
    ) -> Optional[DrainedMessage]:
        """Oldest message matching (comm, source, tag); wildcards allowed.

        ``src_world`` may be ``ANY_SOURCE`` and ``tag`` may be ``ANY_TAG``.
        """
        for i, m in enumerate(self._messages):
            if m.comm_vid != comm_vid:
                continue
            if src_world != C.ANY_SOURCE and m.src_world != src_world:
                continue
            if tag != C.ANY_TAG and m.tag != tag:
                continue
            return self._messages.pop(i) if remove else m
        return None

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self):
        return iter(self._messages)


def redistribute_drain_buffers(
    buffers: dict, rank_map: dict, new_nranks: int
) -> List[DrainBuffer]:
    """Reroute checkpointed drain buffers to a new world size
    (PROTOCOLS.md §12, step 3).

    ``buffers`` maps old rank → its checkpointed :class:`DrainBuffer`;
    ``rank_map`` is the repartition plan's old rank → unique-inheritor
    map.  A message drained by old rank ``o`` was addressed to ``o``'s
    identity, so it moves to ``rank_map[o]``; its sender coordinates are
    rewritten the same way.  ``src_comm_rank`` equals ``src_world`` on
    world-sized communicators (comm rank == world rank) and is rewritten
    with it; on a self communicator it is 0 and stays 0.  Old ranks are
    visited in ascending order and each buffer in FIFO order, so the
    non-overtaking order *per sender* survives the merge.
    """
    out = [DrainBuffer() for _ in range(new_nranks)]
    for old_rank in sorted(buffers):
        for msg in buffers[old_rank]:
            new_src = rank_map[msg.src_world]
            out[rank_map[old_rank]].add(
                DrainedMessage(
                    comm_vid=msg.comm_vid,
                    src_world=new_src,
                    src_comm_rank=(
                        new_src
                        if msg.src_comm_rank == msg.src_world
                        else msg.src_comm_rank
                    ),
                    tag=msg.tag,
                    payload=msg.payload,
                )
            )
    return out


def run_drain(mana) -> int:
    """Execute the drain on one rank; returns messages drained.

    ``mana`` is the rank's :class:`repro.mana.wrappers.ManaRank`; every
    MPI operation below goes through its *lower half* library directly
    (MANA-internal traffic is not wrapped and not counted).
    """
    lib = mana.lower
    nranks = lib.nranks
    world_phys = lib.constant("MPI_COMM_WORLD")
    byte_phys = lib.constant("MPI_BYTE")
    int64_phys = lib.constant("MPI_INT64_T")

    # Step 1: deferred ggids and datatype decoding.
    mana.vids.finalize_ggids()
    mana.ensure_datatypes_decoded()

    # Step 2/precount: complete matchable pending receives.
    _test_pending_recvs(mana)

    # Step 3: exchange cumulative send counts.
    sent = np.zeros(nranks, dtype=np.int64)
    for entry in mana.vids.entries(HandleKind.COMM):
        rec = entry.record
        if isinstance(rec, CommRecord):
            for dst_world, n in rec.sent_to.items():
                sent[dst_world] += n
    expected = np.zeros(nranks, dtype=np.int64)
    lib.alltoall(sent, 1, int64_phys, expected, 1, int64_phys, world_phys)

    # Step 4: drain until counters match.
    drained = 0
    while True:
        received = _received_counts(mana, nranks)
        lagging = np.nonzero(received < expected)[0]
        if lagging.size == 0:
            break
        progressed = _test_pending_recvs(mana)
        for entry in list(mana.vids.entries(HandleKind.COMM)):
            rec = entry.record
            if not isinstance(rec, CommRecord) or entry.phys is None:
                continue
            while True:
                flag, st = lib.iprobe(C.ANY_SOURCE, C.ANY_TAG, entry.phys)
                if not flag:
                    break
                buf = np.empty(max(st.count_bytes, 1), dtype=np.uint8)
                st2 = lib.recv(
                    buf, st.count_bytes, byte_phys, st.source, st.tag,
                    entry.phys,
                )
                src_world = rec.world_ranks[st2.source]
                mana.drain_buffer.add(
                    DrainedMessage(
                        comm_vid=entry.vid,
                        src_world=src_world,
                        src_comm_rank=st2.source,
                        tag=st2.tag,
                        payload=buf[: st2.count_bytes].tobytes(),
                    )
                )
                rec.received_from[src_world] = (
                    rec.received_from.get(src_world, 0) + 1
                )
                drained += 1
                progressed = True
        if not progressed:
            received = _received_counts(mana, nranks)
            still = np.nonzero(received < expected)[0]
            if still.size:
                raise CheckpointError(
                    f"rank {lib.world_rank}: drain stalled; peers "
                    f"{still.tolist()} sent more messages than can be "
                    f"found (expected={expected.tolist()}, "
                    f"received={received.tolist()})"
                )

    # Invariant: nothing addressed to this rank remains in the fabric on
    # any *user* context.  (Collective contexts are empty by the
    # all-returned invariant; MANA-internal traffic is consumed inline.)
    return drained


def _received_counts(mana, nranks: int) -> np.ndarray:
    received = np.zeros(nranks, dtype=np.int64)
    for entry in mana.vids.entries(HandleKind.COMM):
        rec = entry.record
        if isinstance(rec, CommRecord):
            for src_world, n in rec.received_from.items():
                received[src_world] += n
    return received


def _test_pending_recvs(mana) -> bool:
    """MPI_Test every pending nonblocking receive; completed ones write
    into their (upper-half) buffers and bump the drain counters."""
    lib = mana.lower
    progressed = False
    for entry in list(mana.vids.entries(HandleKind.REQUEST)):
        rec = entry.record
        if not isinstance(rec, RequestRecord):
            continue
        if rec.completed or rec.kind != "recv":
            continue
        if rec.persistent and not rec.active:
            continue  # inactive persistent: nothing outstanding
        if entry.phys is None:
            continue  # not posted in this lower half (will re-post at restart)
        flag, st = lib.test(entry.phys)
        if flag:
            rec.completed = True
            rec.status = st
            if not rec.persistent:
                # The lib request is retired; persistent ones stay bound
                # (the lib object merely went inactive).
                mana.vids.set_phys(mana.vids.embed(entry.vid), None)
            comm_entry = mana.vids.lookup(mana.vids.embed(rec.comm_vid))
            crec = comm_entry.record
            if isinstance(crec, CommRecord) and st.source >= 0:
                src_world = crec.world_ranks[st.source]
                crec.received_from[src_world] = (
                    crec.received_from.get(src_world, 0) + 1
                )
            progressed = True
    return progressed
