"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run        run a proxy application (optionally under MANA, optionally
           preempting it at an iteration)
restart    cold-restart a job from a checkpoint directory, optionally
           under a different MPI implementation and/or onto a different
           rank count (``--ranks N`` repartitions N-rank images
           elastically)
report     regenerate one (or all) of the paper's tables/figures
           (``--jobs N`` fans independent cases across N workers)
bench-smoke  tiny hot-path benchmark vs the checked-in baseline
ckpt-bench   format-5 checkpoint pipeline benchmark (chunked dedup,
           compression, warm-incremental bytes written)
ckpt-smoke   small checkpoint bench vs the checked-in baseline; also
           asserts warm saves still write >= 5x fewer bytes than cold
faults     seeded fault-injection scenario sweep (crash / corruption /
           chunk rot / disk-full / coordinator stall -> supervised
           self-healing)
fault-smoke  CI smoke: acceptance scenario twice, asserting the job
           self-heals and the recovery trace is deterministic
elastic-smoke  CI smoke: shrink (8->4), grow (4->8) and cross-impl
           elastic restores, each bit-identical to a cold run at the
           post-restore size, with a deterministic recovery trace
fsck       check (and with --repair, fix) a checkpoint directory after
           a dirty shutdown: journal replay, stray-tmp sweep, chunk
           quarantine, orphan reclamation
crash-smoke  CI smoke: kill the checkpoint store at a deterministic
           subset of syscall-boundary crash points; every kill must
           leave the store restorable or fsck-repairable, nothing
           leaked
apps       list the available proxy applications
impls      list the simulated MPI implementations and their properties
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace


def _cmd_run(args) -> int:
    from repro import JobConfig, Launcher
    from repro.apps import APP_CLASSES

    cls = APP_CLASSES[args.app]
    spec = cls.paper_config(args.platform)
    if args.ranks:
        spec = replace(spec, nranks=args.ranks)
    if args.blocks:
        spec = replace(spec, blocks=args.blocks)
    cfg = JobConfig(
        nranks=spec.nranks,
        impl=args.impl,
        platform=args.platform,
        mana=args.mana or args.preempt_at is not None,
        vid_design=args.vid_design,
        ckpt_dir=args.ckpt_dir,
        ckpt_interval=args.ckpt_interval,
        loop_lag_window=args.lag_window,
    )
    job = Launcher(cfg).launch(lambda r: cls(spec))
    ticket = None
    if args.preempt_at is not None:
        ticket = job.checkpoint_at_iteration(
            "main", args.preempt_at, kind="loop", mode="exit"
        )
    job.start()
    if ticket is not None:
        info = ticket.wait()
        print(f"checkpoint generation {info['generation']}: "
              f"{info['mean_bytes_per_rank'] / 1e6:.1f} MB/rank, "
              f"{info['ckpt_time']:.1f} s -> {cfg.ckpt_dir}")
    res = job.wait()
    print(f"status   : {res.status}")
    if res.status == "failed":
        print(res.first_error())
        return 1
    print(f"runtime  : {res.runtime:.2f} virtual s "
          f"({res.config.impl}, mana={cfg.mana})")
    if cfg.mana:
        print(f"crossings: {res.total_cs:,} "
              f"({res.cs_per_second / 1e6:.2f}M CS/s)")
    if cfg.ckpt_dir:
        print(f"ckpt dir : {cfg.ckpt_dir}")
    return 0


def _cmd_restart(args) -> int:
    from repro import JobConfig, Launcher

    cfg = JobConfig(nranks=1, impl="mpich", mana=True,
                    loop_lag_window=args.lag_window)
    launcher = Launcher(cfg)
    if args.ranks is not None:
        job = launcher.elastic_restart(
            args.ckpt_dir, new_nranks=args.ranks,
            generation=args.generation, impl_override=args.impl,
        )
    else:
        job = launcher.restart(
            args.ckpt_dir, generation=args.generation,
            impl_override=args.impl,
        )
    res = job.run()
    print(f"status : {res.status}")
    if res.status == "failed":
        print(res.first_error())
        return 1
    print(f"runtime: {res.runtime:.2f} virtual s "
          f"(restarted under {job.config.impl} "
          f"on {job.config.nranks} ranks)")
    return 0


def _cmd_report(args) -> int:
    from repro.harness import experiments as E
    from repro.harness.runner import CaseCache

    names = (
        [args.experiment]
        if args.experiment != "all"
        else ["table1", "table2", "figure2", "figure3", "figure4",
              "section63", "table3", "cross_impl_restart",
              "restart_analysis", "overhead_breakdown", "ablation_ggid",
              "ablation_vid_lookup"]
    )
    jobs = args.jobs
    if jobs == 0:
        from repro.harness.parallel import default_jobs

        jobs = default_jobs()
    cache = CaseCache()
    for name in names:
        fn = getattr(E, name)
        if name in ("table1", "table2", "ablation_ggid",
                    "ablation_vid_lookup", "cross_impl_restart",
                    "restart_analysis", "overhead_breakdown"):
            out = fn()
        elif name in ("figure2", "figure3", "figure4"):
            out = fn(args.scale, args.ranks_cap or None, cache, jobs=jobs)
        else:
            out = fn(args.scale, args.ranks_cap or None, cache)
        print(out["text"])
        print()
    return 0


def _cmd_bench_smoke(args) -> int:
    from repro.harness.bench import default_baseline_path, smoke

    try:
        out = smoke(baseline_path=args.baseline,
                    max_regression=args.max_regression)
    except FileNotFoundError:
        path = args.baseline or default_baseline_path()
        print(f"bench-smoke: no baseline at {path}\n"
              f"generate one with: "
              f"PYTHONPATH=src python benchmarks/bench_hotpath.py")
        return 2
    for c in out["checks"]:
        mark = "ok " if c["ok"] else "FAIL"
        slow = (f"  ({c['slowdown']:.2f}x slower than baseline)"
                if c["slowdown"] is not None else "")
        print(f"[{mark}] {c['metric']}: {c['current']:,.0f} "
              f"(baseline {c['baseline']:,.0f}){slow}")
    if not out["ok"]:
        print(f"bench-smoke: hot-path regression beyond "
              f"{out['max_regression']}x tolerance")
        return 1
    print("bench-smoke: hot path within tolerance")
    return 0


def _print_ckpt_table(b) -> None:
    print(f"checkpoint pipeline (format 5): {b['nranks']} ranks x "
          f"{b['payload_mb']:.1f} MB, compress level "
          f"{b['compress_level']}, {b['save_workers']} save workers")
    rows = [("cold save", "cold"),
            ("warm save (identical)", "warm_identical"),
            ("warm save (2% mutated)", "warm_mutated")]
    if b.get("cold_pooled"):
        rows.append(("cold save (pooled)", "cold_pooled"))
    for label, key in rows:
        s = b[key]
        print(f"  {label:24} {s['mb_per_s']:8.1f} MB/s  "
              f"chunks {s['chunks_written']}/{s['chunks_total']} written "
              f"({s['chunks_reused']} reused), "
              f"{s['bytes_written']:,} bytes to disk")
    print(f"  {'restore':24} {b['restore']['mb_per_s']:8.1f} MB/s")
    a = b["async_save"]
    print(f"  async save: ranks blocked {a['snapshot_seconds']*1000:.1f} ms "
          f"(snapshot), drain {a['drain_seconds']*1000:.1f} ms hidden "
          f"behind compute ({a['compute_iters_during_drain']} compute "
          f"iterations overlapped)")
    print(f"  vs format 4: sync warm {b['warm_vs_format4_wallclock']:.2f}x, "
          f"async blocked {b['blocked_vs_format4_wallclock']:.2f}x "
          f"wall-clock")
    print(f"  dedup factor: {b['bytes_dedup_factor']:.1f}x fewer bytes "
          f"(identical), {b['mutated_dedup_factor']:.1f}x (mutated)")


def _cmd_ckpt_bench(args) -> int:
    from repro.harness.bench import run_ckpt_bench

    levels = None
    if args.compress_level:
        levels = [int(v) for v in args.compress_level.split(",") if v]
    out = run_ckpt_bench(out_path=args.out, payload_mb=args.payload_mb,
                         nranks=args.ranks, compress_levels=levels)
    _print_ckpt_table(out["ckpt"])
    for lvl, b in sorted(out.get("compress_level_sweep", {}).items(),
                         key=lambda kv: int(kv[0])):
        print(f"-- compress level {lvl} --")
        _print_ckpt_table(b)
    if args.out:
        print(f"wrote {args.out}")
    return 0


def _cmd_ckpt_smoke(args) -> int:
    from repro.harness.bench import ckpt_smoke, default_ckpt_baseline_path

    try:
        out = ckpt_smoke(baseline_path=args.baseline,
                         max_regression=args.max_regression)
    except FileNotFoundError:
        path = args.baseline or default_ckpt_baseline_path()
        print(f"ckpt-smoke: no baseline at {path}\n"
              f"generate one with: "
              f"PYTHONPATH=src python benchmarks/bench_ckpt.py")
        return 2
    for c in out["checks"]:
        mark = "ok " if c["ok"] else "FAIL"
        slow = (f"  ({c['slowdown']:.2f}x slower than baseline)"
                if c["slowdown"] is not None else "")
        print(f"[{mark}] {c['metric']}: {c['current']:,.1f} "
              f"(baseline {c['baseline']:,.1f}){slow}")
    if not out["ok"]:
        print(f"ckpt-smoke: checkpoint pipeline regression beyond "
              f"{out['max_regression']}x tolerance (or an acceptance "
              f"bound broken: dedup >= 100x, async blocked <= 2x "
              f"format 4, sync warm <= 6x format 4)")
        return 1
    print("ckpt-smoke: checkpoint pipeline within tolerance")
    return 0


def _cmd_faults(args) -> int:
    from repro.faults.scenarios import SCENARIOS, run_scenario

    names = sorted(SCENARIOS) if args.scenario == "all" else [args.scenario]
    failed = 0
    for name in names:
        out = run_scenario(name, seed=args.seed)
        mark = "ok " if out["ok"] else "FAIL"
        restored = [e["generation"] for e in out.get("events", [])
                    if e.get("event") == "restart"]
        print(f"[{mark}] {name}: status={out['status']} "
              f"restarts={out['restarts']} restored_gens={restored} "
              f"faults_fired={len(out['faults_fired'])}")
        for gen, d in sorted(out.get("dedup", {}).items()):
            print(f"       gen {gen}: {d['chunks_written']} chunks "
                  f"written, {d['chunks_reused']} reused, "
                  f"{d['bytes_written']:,} bytes to disk")
        if args.verbose:
            for ev in out.get("events", []):
                print(f"       event: {ev}")
            for ev in out["faults_fired"]:
                print(f"       fault: {ev['what']}")
            print(f"       checksums: {out['checksums']}")
        if not out["ok"]:
            failed += 1
            print(f"       checksums: {out['checksums']}")
            print(f"       baseline : {out['baseline']}")
    if failed:
        print(f"faults: {failed}/{len(names)} scenario(s) FAILED")
        return 1
    print(f"faults: all {len(names)} scenario(s) self-healed "
          f"(seed {args.seed})")
    return 0


def _cmd_fault_smoke(args) -> int:
    from repro.faults.scenarios import fault_smoke

    out = fault_smoke(seed=args.seed)
    run = out["run"]
    restored = [e["generation"] for e in run["events"]
                if e["event"] == "restart"]
    print(f"self-heal    : {'ok' if out['self_heal_ok'] else 'FAIL'} "
          f"(status={run['status']}, restarts={run['restarts']}, "
          f"restored_gens={restored})")
    print(f"checksums    : "
          f"{'match fault-free run' if run['checksums'] == run['baseline'] else 'MISMATCH'}")
    print(f"deterministic: {'ok' if out['deterministic'] else 'FAIL'} "
          f"(recovery trace identical across two seeded runs)")
    if not out["ok"]:
        print("fault-smoke: FAILED")
        return 1
    print("fault-smoke: seeded crash + corruption recovered "
          "deterministically")
    return 0


def _cmd_elastic_smoke(args) -> int:
    from repro.faults.scenarios import elastic_smoke

    out = elastic_smoke(seed=args.seed)
    for key, label in (("shrink", "shrink 8->4"),
                       ("grow", "grow 4->8"),
                       ("migrate", "openmpi 8 -> mpich 4")):
        run = out[key]
        match = (run["checksums"] == run["baseline"]["checksums"]
                 and run["history"] == run["baseline"]["history"])
        print(f"{label:22}: {'ok' if run['ok'] else 'FAIL'} "
              f"(status={run['status']}, restarts={run['restarts']}, "
              f"{run['from_nranks']}->{run['to_nranks']} ranks, "
              f"{'bit-identical to cold run' if match else 'MISMATCH'})")
    print(f"{'deterministic':22}: "
          f"{'ok' if out['deterministic'] else 'FAIL'} "
          f"(recovery trace identical across two seeded shrinks)")
    if not out["ok"]:
        print("elastic-smoke: FAILED")
        return 1
    print("elastic-smoke: N->M restores reproduce cold M-rank runs "
          "bit-identically")
    return 0


def _cmd_fsck(args) -> int:
    from repro.mana.fsck import fsck

    report = fsck(args.ckpt_dir, repair=args.repair)
    print(report.summary())
    if args.verbose or not args.repair:
        for rec in report.pending_records:
            print(f"  pending journal record: {rec}")
        for gen, problems in sorted(report.skipped_generations.items()):
            for p in problems:
                print(f"  generation {gen} not restorable: {p}")
        for digest in report.quarantined_chunks:
            print(f"  quarantined chunk {digest[:12]}…")
        for digest in report.missing_chunks:
            print(f"  missing chunk {digest[:12]}…")
    if not args.repair and report.dirty:
        print("fsck: directory is dirty (run with --repair to fix)")
        return 1
    return 0


def _cmd_crash_smoke(args) -> int:
    import shutil
    import tempfile

    from repro.faults.crashsweep import run_sweep

    workdir = tempfile.mkdtemp(prefix="repro-crash-smoke-")
    try:
        out = run_sweep(workdir, limit=args.points)
        # Determinism: the sweep's per-point verdicts must be
        # bit-identical across two runs (fresh directories each time).
        workdir2 = tempfile.mkdtemp(prefix="repro-crash-smoke-")
        try:
            out2 = run_sweep(workdir2, limit=args.points)
        finally:
            shutil.rmtree(workdir2, ignore_errors=True)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    deterministic = out["results"] == out2["results"]
    contexts = ", ".join(out["contexts"])
    print(f"crash points : {out['points_total']} enumerated across "
          f"contexts [{contexts}]; {out['points_checked']} killed")
    for r in out["failures"]:
        print(f"[FAIL] {r['point']}: {'; '.join(r['problems'])}")
    print(f"restore/repair: "
          f"{'ok' if out['ok'] else 'FAIL'} (every kill left the store "
          f"restorable or fsck-repairable, zero leaks)")
    print(f"deterministic : {'ok' if deterministic else 'FAIL'} "
          f"(verdicts identical across two runs)")
    if not out["ok"] or not deterministic:
        print("crash-smoke: FAILED")
        return 1
    print("crash-smoke: store survives syscall-boundary kills")
    return 0


def _cmd_apps(_args) -> int:
    from repro.apps import APP_CLASSES, EXAMPI_COMPATIBLE

    print(f"{'app':10} {'ranks':>5} {'input':30} {'exampi?':>8}")
    for name, cls in sorted(APP_CLASSES.items()):
        spec = cls.paper_config()
        ok = "yes" if name in EXAMPI_COMPATIBLE else "no"
        print(f"{name:10} {spec.nranks:5} {spec.input_label:30} {ok:>8}")
    return 0


def _cmd_impls(_args) -> int:
    from repro.impls import IMPLS
    from repro.fabric.network import Fabric
    from repro.simtime.clock import VirtualClock
    from repro.simtime.cost import CostModel

    print(f"{'impl':10} {'handle bits':>11} {'unsupported fns':>16}")
    for name, cls in sorted(IMPLS.items()):
        lib = cls(Fabric(1, CostModel.discovery()), 0, VirtualClock(),
                  CostModel.discovery())
        print(f"{name:10} {lib.handles.handle_bits:11} "
              f"{len(cls.UNSUPPORTED):16}")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run a proxy application")
    p.add_argument("app", choices=["comd", "hpcg", "lammps", "lulesh",
                                   "sw4", "gromacs", "vasp"])
    p.add_argument("--impl", default="mpich",
                   choices=["mpich", "openmpi", "exampi", "craympi"])
    p.add_argument("--platform", default="discovery",
                   choices=["discovery", "perlmutter"])
    p.add_argument("--ranks", type=int, default=8)
    p.add_argument("--blocks", type=int, default=8)
    p.add_argument("--mana", action="store_true")
    p.add_argument("--vid-design", default="new", choices=["new", "legacy"])
    p.add_argument("--ckpt-dir", default=None)
    p.add_argument("--ckpt-interval", type=float, default=None,
                   help="periodic checkpoints every N virtual seconds")
    p.add_argument("--preempt-at", type=int, default=None,
                   help="checkpoint+exit when the main loop reaches this "
                        "iteration (implies --mana)")
    p.add_argument("--lag-window", type=int, default=4)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("restart", help="cold-restart from a checkpoint dir")
    p.add_argument("ckpt_dir")
    p.add_argument("--generation", type=int, default=None)
    p.add_argument("--impl", default=None,
                   choices=["mpich", "openmpi", "exampi", "craympi"],
                   help="restart under a different MPI implementation")
    p.add_argument("--ranks", type=int, default=None,
                   help="elastic restart: repartition the checkpointed "
                        "upper halves onto this many ranks")
    p.add_argument("--lag-window", type=int, default=4)
    p.set_defaults(fn=_cmd_restart)

    p = sub.add_parser("report", help="regenerate paper tables/figures")
    p.add_argument("experiment", nargs="?", default="all",
                   choices=["all", "table1", "table2", "figure2", "figure3",
                            "figure4", "section63", "table3",
                            "cross_impl_restart", "restart_analysis",
                            "overhead_breakdown", "ablation_ggid",
                            "ablation_vid_lookup"])
    p.add_argument("--scale", type=float, default=0.12)
    p.add_argument("--ranks-cap", type=int, default=8)
    p.add_argument("--jobs", type=int, default=1,
                   help="run independent figure cases across N worker "
                        "processes (0 = all available CPUs)")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "bench-smoke",
        help="tiny hot-path benchmark vs the checked-in baseline",
    )
    p.add_argument("--baseline", default=None,
                   help="baseline JSON (default: "
                        "benchmarks/results/BENCH_hotpath.json)")
    p.add_argument("--max-regression", type=float, default=5.0,
                   help="fail when lookups/sec drop more than this factor")
    p.set_defaults(fn=_cmd_bench_smoke)

    p = sub.add_parser(
        "ckpt-bench",
        help="format-5 checkpoint pipeline benchmark (dedup/compress)",
    )
    p.add_argument("--payload-mb", type=float, default=4.0,
                   help="per-rank payload size in MB (default 4.0)")
    p.add_argument("--ranks", type=int, default=4)
    p.add_argument("--compress-level", default=None, metavar="L1,L2,...",
                   help="comma-separated zlib levels to sweep in addition "
                        "to the default run (e.g. 1,3,6,9)")
    p.add_argument("--out", default=None,
                   help="write full JSON results to this path")
    p.set_defaults(fn=_cmd_ckpt_bench)

    p = sub.add_parser(
        "ckpt-smoke",
        help="small checkpoint bench vs the checked-in baseline",
    )
    p.add_argument("--baseline", default=None,
                   help="baseline JSON (default: "
                        "benchmarks/results/BENCH_ckpt.json)")
    p.add_argument("--max-regression", type=float, default=5.0,
                   help="fail when MB/s drops more than this factor")
    p.set_defaults(fn=_cmd_ckpt_smoke)

    p = sub.add_parser(
        "faults",
        help="seeded fault-injection sweep with supervised self-healing",
    )
    p.add_argument("scenario", nargs="?", default="all",
                   choices=["all", "crash-restore", "self-heal",
                            "disk-full", "truncate-fallback",
                            "round-abort", "msg-delay", "chunk-corrupt",
                            "async-drain-fault", "elastic-shrink",
                            "elastic-grow", "elastic-migrate"])
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=_cmd_faults)

    p = sub.add_parser(
        "fault-smoke",
        help="CI smoke: seeded crash+corruption recovery, deterministic",
    )
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(fn=_cmd_fault_smoke)

    p = sub.add_parser(
        "elastic-smoke",
        help="CI smoke: elastic N->M restores vs cold M-rank runs",
    )
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(fn=_cmd_elastic_smoke)

    p = sub.add_parser(
        "fsck",
        help="check/repair a checkpoint directory after a dirty shutdown",
    )
    p.add_argument("ckpt_dir")
    p.add_argument("--repair", action="store_true",
                   help="fix what the check finds (default: report only, "
                        "exit 1 if dirty)")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=_cmd_fsck)

    p = sub.add_parser(
        "crash-smoke",
        help="CI smoke: syscall-boundary crash injection vs fsck repair",
    )
    p.add_argument("--points", type=int, default=24,
                   help="number of crash points to kill (deterministic "
                        "subset; 0 = exhaustive)")
    p.set_defaults(fn=_cmd_crash_smoke)

    p = sub.add_parser("apps", help="list proxy applications")
    p.set_defaults(fn=_cmd_apps)

    p = sub.add_parser("impls", help="list MPI implementations")
    p.set_defaults(fn=_cmd_impls)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
